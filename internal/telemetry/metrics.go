package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a small metrics registry: counters, gauges and histograms
// with optional labels, Prometheus-style text exposition, and a
// JSON-serializable Snapshot. It is safe for concurrent use; instrument
// handles (Counter/Gauge/Histogram) are lock-free after creation.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// Label is one metric label pair.
type Label struct {
	Key, Value string
}

type family struct {
	name, help, typ string // typ: "counter", "gauge", "histogram"
	series          map[string]metric
	order           []string
}

type metric interface{}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	return b.String()
}

// seriesName renders name{k="v",...} for exposition and snapshot keys.
func seriesName(name, lk string) string {
	if lk == "" {
		return name
	}
	return name + "{" + lk + "}"
}

func (r *Registry) family(name, help, typ string) *family {
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]metric)}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s and %s", name, f.typ, typ))
	}
	return f
}

func (f *family) get(lk string, mk func() metric) metric {
	m := f.series[lk]
	if m == nil {
		m = mk()
		f.series[lk] = m
		f.order = append(f.order, lk)
	}
	return m
}

// Counter is a monotonically increasing int64.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable float64.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution (cumulative on exposition).
type Histogram struct {
	bounds []float64 // upper bounds, ascending; an implicit +Inf follows
	counts []atomic.Int64
	count  atomic.Int64
	sumMu  sync.Mutex
	sum    float64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumMu.Lock()
	h.sum += v
	h.sumMu.Unlock()
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() float64 {
	h.sumMu.Lock()
	defer h.sumMu.Unlock()
	return h.sum
}

// Counter returns (creating if needed) the counter name{labels}.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, "counter")
	return f.get(labelKey(labels), func() metric { return &Counter{} }).(*Counter)
}

// Gauge returns (creating if needed) the gauge name{labels}.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, "gauge")
	return f.get(labelKey(labels), func() metric { return &Gauge{} }).(*Gauge)
}

// Histogram returns (creating if needed) the histogram name{labels} with
// the given ascending upper bounds (nil → LatencyBuckets). Bounds are fixed
// by the first registration.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, "histogram")
	return f.get(labelKey(labels), func() metric {
		if bounds == nil {
			bounds = LatencyBuckets
		}
		return &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Int64, len(bounds)+1),
		}
	}).(*Histogram)
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteProm writes the registry in the Prometheus text exposition format,
// deterministically ordered (families in registration order, series in
// creation order).
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.order {
		f := r.families[name]
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, lk := range f.order {
			m := f.series[lk]
			switch v := m.(type) {
			case *Counter:
				fmt.Fprintf(w, "%s %d\n", seriesName(f.name, lk), v.Value())
			case *Gauge:
				fmt.Fprintf(w, "%s %s\n", seriesName(f.name, lk), formatFloat(v.Value()))
			case *Histogram:
				cum := int64(0)
				for i, b := range v.bounds {
					cum += v.counts[i].Load()
					fmt.Fprintf(w, "%s %d\n",
						seriesName(f.name+"_bucket", joinLabels(lk, fmt.Sprintf("le=%q", formatFloat(b)))), cum)
				}
				cum += v.counts[len(v.bounds)].Load()
				fmt.Fprintf(w, "%s %d\n",
					seriesName(f.name+"_bucket", joinLabels(lk, `le="+Inf"`)), cum)
				fmt.Fprintf(w, "%s %s\n", seriesName(f.name+"_sum", lk), formatFloat(v.Sum()))
				fmt.Fprintf(w, "%s %d\n", seriesName(f.name+"_count", lk), v.Count())
			}
		}
	}
	return nil
}

func joinLabels(lk, extra string) string {
	if lk == "" {
		return extra
	}
	return lk + "," + extra
}

// HistSnapshot is a Histogram frozen for serialization. Bucket counts are
// cumulative, matching the exposition format.
type HistSnapshot struct {
	Count   int64         `json:"count"`
	Sum     float64       `json:"sum"`
	Buckets []BucketCount `json:"buckets"`
}

// BucketCount is one cumulative histogram bucket. Only finite bounds are
// listed; the implicit +Inf bucket's cumulative count is the snapshot's
// Count field.
type BucketCount struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// Snapshot is a registry frozen for serialization: the machine-readable
// form of a run's metrics. Keys are series names (name or name{labels}).
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]float64      `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot freezes the registry.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistSnapshot),
	}
	for _, name := range r.order {
		f := r.families[name]
		for _, lk := range f.order {
			key := seriesName(f.name, lk)
			switch v := f.series[lk].(type) {
			case *Counter:
				s.Counters[key] = v.Value()
			case *Gauge:
				s.Gauges[key] = v.Value()
			case *Histogram:
				hs := HistSnapshot{Count: v.Count(), Sum: v.Sum()}
				cum := int64(0)
				for i, b := range v.bounds {
					cum += v.counts[i].Load()
					hs.Buckets = append(hs.Buckets, BucketCount{LE: b, Count: cum})
				}
				s.Histograms[key] = hs
			}
		}
	}
	return s
}

// wallDependentSeries are the metric families whose values depend on
// wall-clock scheduling rather than the deterministic virtual-time
// simulation: end-to-end wall times, restore wall times, and everything
// the reliable sublayer's real retransmission timers drive. Canonical
// strips them so that two runs of the same deterministic workload snapshot
// to byte-identical JSON.
var wallDependentSeries = map[string]bool{
	"run_wall_ns":                true,
	"run_recovery_wall_ns":       true,
	"dsm_recovery_wall_ns_total": true,
	"net_retransmits_total":      true,
	"net_retrans_bytes_total":    true,
	"net_deduped_total":          true,
	"telemetry_trips_total":      true,
}

// canonicalKey reports whether a series key survives canonicalization:
// its family is not wall-dependent, and it is not the Retransmit or
// LinkDead event count (both produced by real timers).
func canonicalKey(key string) bool {
	base := key
	if i := strings.IndexByte(key, '{'); i >= 0 {
		base = key[:i]
	}
	if wallDependentSeries[base] {
		return false
	}
	if base == "telemetry_events_total" &&
		(strings.Contains(key, `kind="Retransmit"`) || strings.Contains(key, `kind="LinkDead"`)) {
		return false
	}
	return true
}

// Canonical returns a copy of the snapshot with every wall-clock-dependent
// series removed (see wallDependentSeries): run/recovery wall times, trip
// counts, and the retransmission counters the reliable sublayer's real
// timers drive. What remains is a function of the deterministic
// virtual-time simulation alone, so deterministic workloads canonicalize
// to byte-identical JSON across runs — the form the sweep aggregator and
// golden tests pin. (Note: a run with Config.Reliable still inflates
// per-type net_* traffic counters by timer-driven resends; byte-identical
// aggregation is guaranteed only for grids without the reliable sublayer.)
func (s *Snapshot) Canonical() *Snapshot {
	out := &Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistSnapshot),
	}
	for k, v := range s.Counters {
		if canonicalKey(k) {
			out.Counters[k] = v
		}
	}
	for k, v := range s.Gauges {
		if canonicalKey(k) {
			out.Gauges[k] = v
		}
	}
	for k, v := range s.Histograms {
		if canonicalKey(k) {
			out.Histograms[k] = v
		}
	}
	return out
}

// CounterTotal sums every counter series of the family name (e.g. all
// net_bytes_total{type=...} series). A series with no labels contributes
// its value directly.
func (s *Snapshot) CounterTotal(name string) int64 {
	var n int64
	for k, v := range s.Counters {
		if k == name || strings.HasPrefix(k, name+"{") {
			n += v
		}
	}
	return n
}

// MarshalJSON renders the snapshot with deterministic key order (Go maps
// marshal sorted, so the default marshaler already suffices; this exists to
// document the guarantee).
func (s *Snapshot) MarshalJSON() ([]byte, error) {
	type alias Snapshot
	return json.Marshal((*alias)(s))
}
