package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

func TestDisabledIsNoOp(t *testing.T) {
	Stop()
	if Enabled() {
		t.Fatal("Enabled() with no recorder installed")
	}
	// Must not panic or record anywhere.
	Emit(0, KPageFault, 1, 2, 0, 0)
	Logf(0, 1, "dropped %d", 7)
	Trip(TripProcPanic, "nothing installed")
	if Active() != nil {
		t.Fatal("Active() non-nil after Stop")
	}
}

func TestRecordAndReadBack(t *testing.T) {
	r := Start(Config{Procs: 2})
	defer Stop()

	Emit(0, KPageFault, 100, 7, 0, 0)
	Emit(1, KPageFetch, 250, 7, 0, 150)
	Emit(-1, KRetransmit, 300, 1, 2, 3)
	Emit(5, KLinkDead, 400, 1, 2, 3) // out of range → system ring

	if got := len(r.ProcEvents(0)); got != 1 {
		t.Fatalf("proc 0 retained %d events, want 1", got)
	}
	sys := r.ProcEvents(-1)
	if len(sys) != 2 {
		t.Fatalf("system ring retained %d events, want 2", len(sys))
	}
	all := r.Events()
	if len(all) != 4 {
		t.Fatalf("Events() = %d, want 4", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Seq <= all[i-1].Seq {
			t.Fatalf("Events() not in sequence order: %d after %d", all[i].Seq, all[i-1].Seq)
		}
	}
	e := all[1]
	if e.Kind != KPageFetch || e.Proc != 1 || e.VT != 250 || e.A != 7 || e.C != 150 {
		t.Fatalf("round-trip mismatch: %+v", e)
	}

	// Event-derived metrics updated.
	m := r.Metrics().Snapshot()
	if got := m.Counters[`telemetry_events_total{kind="PageFetch"}`]; got != 1 {
		t.Fatalf("PageFetch event counter = %d, want 1", got)
	}
	if h, ok := m.Histograms["dsm_page_fetch_latency_ns"]; !ok || h.Count != 1 {
		t.Fatalf("fetch latency histogram = %+v", h)
	}
}

func TestRingBounding(t *testing.T) {
	r := Start(Config{Procs: 1, Cap: 4})
	defer Stop()
	for i := 0; i < 10; i++ {
		Emit(0, KLockRequest, int64(i), int64(i), 0, 0)
	}
	evs := r.ProcEvents(0)
	if len(evs) != 4 {
		t.Fatalf("bounded ring retained %d, want 4", len(evs))
	}
	// Oldest retained must be event 6 (0..5 overwritten), in record order.
	for i, e := range evs {
		if want := int64(6 + i); e.A != want {
			t.Fatalf("evs[%d].A = %d, want %d", i, e.A, want)
		}
	}
	if r.Dropped() != 6 {
		t.Fatalf("Dropped() = %d, want 6", r.Dropped())
	}
}

func TestUnboundedRing(t *testing.T) {
	r := Start(Config{Procs: 1, Cap: -1})
	defer Stop()
	for i := 0; i < 10000; i++ {
		Emit(0, KLog, 0, 0, 0, 0)
	}
	if got := len(r.ProcEvents(0)); got != 10000 {
		t.Fatalf("unbounded ring retained %d, want 10000", got)
	}
	if r.Dropped() != 0 {
		t.Fatalf("Dropped() = %d, want 0", r.Dropped())
	}
}

func TestLogfRequiresCapture(t *testing.T) {
	r := Start(Config{Procs: 1})
	Logf(0, 0, "not captured")
	if n := len(r.Events()); n != 0 {
		t.Fatalf("Logf recorded %d events without CaptureLog", n)
	}
	Stop()

	r = Start(Config{Procs: 1, CaptureLog: true})
	defer Stop()
	if !LogCaptureEnabled() {
		t.Fatal("LogCaptureEnabled() = false")
	}
	Logf(0, 5, "captured %d", 42)
	evs := r.Events()
	if len(evs) != 1 || evs[0].Kind != KLog || evs[0].Msg != "captured 42" {
		t.Fatalf("captured events = %+v", evs)
	}
}

func TestFlightDump(t *testing.T) {
	var sink bytes.Buffer
	r := Start(Config{Procs: 2, FlightN: 3, FlightSink: &sink})
	defer Stop()
	for i := 0; i < 8; i++ {
		Emit(i%2, KBarrierArrive, int64(i*10), int64(i), 0, 0)
	}
	Trip(TripProcPanic, "unit test trip")
	if r.Trips() != 1 {
		t.Fatalf("Trips() = %d, want 1", r.Trips())
	}
	if got := r.Metrics().Snapshot().Counters[`telemetry_trips_total{reason="ProcPanic"}`]; got != 1 {
		t.Fatalf("typed trip counter = %d, want 1", got)
	}
	out := sink.String()
	if !strings.Contains(out, "flight recorder: ProcPanic: unit test trip") {
		t.Fatalf("dump missing reason header:\n%s", out)
	}
	if !strings.Contains(out, "last 3 of 8 retained events") {
		t.Fatalf("dump missing truncation line:\n%s", out)
	}
	// Exactly the last 3 events (a=5,6,7), merged in global order.
	if strings.Count(out, "BarrierArrive") != 3 {
		t.Fatalf("dump should carry exactly 3 events:\n%s", out)
	}
	if !strings.Contains(out, "a=7") || strings.Contains(out, "a=4 ") {
		t.Fatalf("dump carries wrong tail:\n%s", out)
	}
}

func TestStopReturnsRecorder(t *testing.T) {
	r := Start(Config{Procs: 1})
	Emit(0, KRaceFound, 1, 2, 3, 1)
	got := Stop()
	if got != r {
		t.Fatal("Stop() did not return the installed recorder")
	}
	if len(got.Events()) != 1 {
		t.Fatal("recorder contents lost after Stop")
	}
	if Stop() != nil {
		t.Fatal("second Stop() should return nil")
	}
}

// BenchmarkEmitDisabled measures the cost of an event site while recording
// is off: it must stay a single atomic load (sub-nanosecond on modern
// hardware), the discipline the acceptance criteria pin down.
func BenchmarkEmitDisabled(b *testing.B) {
	Stop()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Emit(0, KPageFault, int64(i), 1, 0, 0)
	}
}

func BenchmarkEmitEnabled(b *testing.B) {
	Start(Config{Procs: 1, Cap: 1024})
	defer Stop()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Emit(0, KPageFault, int64(i), 1, 0, 0)
	}
}
