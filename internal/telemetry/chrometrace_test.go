package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"
)

// chromeDoc mirrors the trace-event JSON envelope for decoding in tests.
type chromeDoc struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string                 `json:"name"`
		Ph   string                 `json:"ph"`
		Ts   float64                `json:"ts"`
		Dur  float64                `json:"dur"`
		Pid  int                    `json:"pid"`
		Tid  int                    `json:"tid"`
		Args map[string]interface{} `json:"args"`
	} `json:"traceEvents"`
}

func synthEvents() {
	Emit(0, KPageFault, 100_000, 3, 1, 0)
	Emit(0, KPageFetch, 400_000, 3, 1, 300_000)
	Emit(1, KLockRequest, 50_000, 2, 0, 0)
	Emit(1, KLockAcquired, 250_000, 2, 0, 200_000)
	Emit(0, KBarrierDepart, 900_000, 0, 0, 500_000)
	Emit(-1, KRetransmit, 600_000, 1, 4, 2)
}

func exportTrace(t *testing.T) ([]byte, *chromeDoc) {
	t.Helper()
	r := Start(Config{Procs: 2})
	defer Stop()
	synthEvents()
	var b bytes.Buffer
	if err := r.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, b.String())
	}
	return b.Bytes(), &doc
}

func TestChromeTraceStructure(t *testing.T) {
	_, doc := exportTrace(t)

	// Metadata: process name + one thread per proc + system.
	threads := map[int]string{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" && e.Name == "thread_name" {
			threads[e.Tid] = e.Args["name"].(string)
		}
	}
	if len(threads) != 3 || threads[0] != "proc 0" || threads[1] != "proc 1" || threads[2] != "system" {
		t.Fatalf("thread metadata = %v", threads)
	}

	byName := map[string][]int{}
	for _, e := range doc.TraceEvents {
		if e.Ph != "M" {
			byName[e.Name] = append(byName[e.Name], e.Tid)
		}
	}
	// Instants land on the emitter's track.
	if tids := byName["PageFault"]; len(tids) != 1 || tids[0] != 0 {
		t.Fatalf("PageFault tids = %v", tids)
	}
	// System events (proc -1) land on the system track.
	if tids := byName["Retransmit"]; len(tids) != 1 || tids[0] != 2 {
		t.Fatalf("Retransmit tids = %v", tids)
	}

	// Wait-shaped events export as X spans with virtual durations in µs.
	var found int
	for _, e := range doc.TraceEvents {
		switch e.Name {
		case "page fetch":
			found++
			if e.Ph != "X" || e.Ts != 100 || e.Dur != 300 {
				t.Fatalf("page fetch span = %+v", e)
			}
		case "lock wait":
			found++
			if e.Ph != "X" || e.Ts != 50 || e.Dur != 200 || e.Tid != 1 {
				t.Fatalf("lock wait span = %+v", e)
			}
		case "barrier wait":
			found++
			if e.Ph != "X" || e.Ts != 400 || e.Dur != 500 {
				t.Fatalf("barrier wait span = %+v", e)
			}
		}
	}
	if found != 3 {
		t.Fatalf("found %d wait spans, want 3", found)
	}
}

// TestChromeTraceDeterministic records the same events in two different
// real-time interleavings; the exports must be byte-identical because the
// exporter sorts canonically by virtual time, not by arrival order.
func TestChromeTraceDeterministic(t *testing.T) {
	r1 := Start(Config{Procs: 2})
	synthEvents()
	Stop()

	r2 := Start(Config{Procs: 2})
	// Same events, reversed emission order (different Seq/Wall values).
	Emit(-1, KRetransmit, 600_000, 1, 4, 2)
	Emit(0, KBarrierDepart, 900_000, 0, 0, 500_000)
	Emit(1, KLockAcquired, 250_000, 2, 0, 200_000)
	Emit(1, KLockRequest, 50_000, 2, 0, 0)
	Emit(0, KPageFetch, 400_000, 3, 1, 300_000)
	Emit(0, KPageFault, 100_000, 3, 1, 0)
	Stop()

	var b1, b2 bytes.Buffer
	if err := r1.WriteChromeTrace(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r2.WriteChromeTrace(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("exports differ across emission orders:\n%s\n---\n%s", b1.String(), b2.String())
	}
}
