package telemetry

import (
	"io"
	"testing"
)

// TestObserverSeesEveryEvent: a Config.Observer receives each emitted
// event synchronously, after it has landed in the recorder's ring, with
// all fields intact — the hook the detection service uses to stream race
// reports into its store as they are found.
func TestObserverSeesEveryEvent(t *testing.T) {
	var seen []Event
	r := New(Config{
		Procs:      2,
		FlightSink: io.Discard,
		Observer:   func(e Event) { seen = append(seen, e) },
	})
	scope := To(r)
	scope.Emit(0, KRaceFound, 100, 0xbeef, 3, 1)
	scope.Emit(1, KPageFault, 200, 7, 0, 0)
	scope.Emit(-1, KLinkDead, 300, 1, 2, 0)

	if len(seen) != 3 {
		t.Fatalf("observer saw %d events, want 3", len(seen))
	}
	race := seen[0]
	if race.Kind != KRaceFound || race.A != 0xbeef || race.B != 3 || race.C != 1 || race.VT != 100 {
		t.Fatalf("observed race event mangled: %+v", race)
	}
	// Synchronous, post-ring: by observation time the event is readable.
	if got := len(r.Events()); got != 3 {
		t.Fatalf("ring holds %d events after observation, want 3", got)
	}
	// The observer must not perturb the recorder's own accounting.
	m := r.Metrics().Snapshot()
	if got := m.Counters[`telemetry_events_total{kind="RaceFound"}`]; got != 1 {
		t.Fatalf("RaceFound counter = %d, want 1", got)
	}
}

// TestTripObserver: Recorder.Trip invokes the hook after the flight dump,
// with the typed reason and detail; a recorder without the hook trips
// exactly as before.
func TestTripObserver(t *testing.T) {
	type trip struct {
		reason TripReason
		detail string
	}
	var trips []trip
	r := New(Config{
		Procs:        1,
		FlightSink:   io.Discard,
		TripObserver: func(reason TripReason, detail string) { trips = append(trips, trip{reason, detail}) },
	})
	r.Trip(TripBarrierTimeout, "barrier 4 wedged")
	r.Trip(TripProcPanic, "p2 panicked")

	if len(trips) != 2 {
		t.Fatalf("trip observer saw %d trips, want 2", len(trips))
	}
	if trips[0].reason != TripBarrierTimeout || trips[0].detail != "barrier 4 wedged" {
		t.Fatalf("first trip mangled: %+v", trips[0])
	}
	if r.Trips() != 2 {
		t.Fatalf("Trips() = %d, want 2", r.Trips())
	}

	// Hook-less recorders are untouched by the feature.
	plain := New(Config{Procs: 1, FlightSink: io.Discard})
	plain.Trip(TripLinkDead, "no observer")
	if plain.Trips() != 1 {
		t.Fatalf("plain recorder Trips() = %d, want 1", plain.Trips())
	}
}
