// Package telemetry is the observability subsystem of the simulated
// cluster: a structured protocol-event tracer, a metrics registry with
// Prometheus-style exposition, and a flight recorder that dumps the most
// recent events when something goes wrong (reliable-layer retry-cap
// exhaustion, barrier timeout, process panic).
//
// The paper's evaluation is itself an observability exercise — Table 3
// attributes wire bandwidth, Figure 3 decomposes overhead — but the seed
// reproduction scattered those numbers across ad-hoc counters. This package
// gives every layer (dsm coherence handlers, the simnet fault injector, the
// reliable retransmission sublayer) one typed event pipeline and one
// metrics registry, in the low-intrusiveness spirit of Ronsse & De
// Bosschere's non-intrusive tracing: when recording is off, an event site
// costs exactly one atomic pointer load (the same discipline the old
// debuglog kept, which is now a thin shim over this core).
//
// Events are recorded into per-process ring buffers with both virtual
// (costmodel) and wall timestamps. Exporters include Chrome trace-event
// JSON (see WriteChromeTrace), which renders a run as a per-process cluster
// timeline in Perfetto or chrome://tracing.
//
// Recorders come in two flavors. Start installs a process-global recorder —
// the historical single-run mode, still what the debuglog shim and the
// simplest tools use. New builds a handle-scoped recorder that is never
// installed globally: thread it to the layers that should record into it
// (dsm.Config.Recorder, or a Scope built with To) and N recording sessions
// can coexist in one process without interleaving rings, sequence numbers,
// or metric registries — the property the sweep orchestrator
// (internal/sweep) depends on to run a grid of Systems concurrently.
// Event sites take a Scope; the zero Scope falls back to the global
// recorder, preserving the one-atomic-load disabled fast path.
//
// The package deliberately imports only the standard library so that any
// layer of the system can instrument itself without dependency cycles.
package telemetry

import (
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is the type of one protocol event. Args A, B, C are kind-specific;
// the table below documents them.
type Kind uint8

const (
	// KLog is a free-form formatted string event — the debuglog shim.
	KLog Kind = iota
	// KPageFault: a protection fault on the local copy. A=page, B=1 write.
	KPageFault
	// KPageFetch: a remote page copy arrived and was applied.
	// A=page, B=source proc, C=fetch latency (virtual ns).
	KPageFetch
	// KOwnershipXfer: this proc served a write fault and gave up
	// single-writer ownership. A=page, B=new owner.
	KOwnershipXfer
	// KLockRequest: the app thread asked the manager for a lock. A=lock.
	KLockRequest
	// KLockForward: the manager forwarded a request along the lock chain.
	// A=lock, B=requester, C=last holder it was sent to.
	KLockForward
	// KLockGrant: a grant was sent to the next tenure.
	// A=lock, B=requester, C=interval records carried.
	KLockGrant
	// KLockAcquired: the grant arrived at the requester.
	// A=lock, B=granter, C=wait (virtual ns).
	KLockAcquired
	// KLockRelease: the holder released. A=lock.
	KLockRelease
	// KBarrierArrive: a proc reached the barrier. A=epoch.
	KBarrierArrive
	// KBarrierRelease: the master released an epoch (master only).
	// A=epoch, B=interval records broadcast, C=arrival skew (virtual ns).
	KBarrierRelease
	// KBarrierDepart: a proc left the barrier. A=epoch, C=wait (virtual ns).
	KBarrierDepart
	// KIntervalClose: an interval record was materialized.
	// A=interval index, B=#write notices, C=#read notices.
	KIntervalClose
	// KRaceCheck: the master ran the bitmap comparison pass (master only).
	// A=check-list entries, B=bitmaps compared, C=races found.
	KRaceCheck
	// KRaceFound: one dynamic race report. A=address, B=epoch, C=1 if
	// write-write.
	KRaceFound
	// KDiffFlush: a twinned page's diff was flushed home. A=page, B=words.
	KDiffFlush
	// KRetransmit: the reliable sublayer's timer resent a link's unacked
	// envelopes. A=dest proc, B=envelopes resent, C=retry round.
	KRetransmit
	// KLinkDead: a link exhausted its retry cap and the transport shut
	// down. A=dest proc, B=unacked envelopes, C=retry cap.
	KLinkDead
	// KWireDrop: the fault injector discarded a message. A=dest, B=msg type.
	KWireDrop
	// KWireDup: the fault injector duplicated a message. A=dest, B=msg type.
	KWireDup
	// KWireReorder: the fault injector held a message back. A=dest, B=msg type.
	KWireReorder
	// KCheckpoint: a process serialized its recovery state at a barrier
	// departure. A=epoch, B=manifest bytes, C=logical (full-serialization)
	// bytes including chunk payloads.
	KCheckpoint
	// KCrashInjected: the crash plan killed a process. A=crash point
	// (dsm.CrashPoint), B=victim proc.
	KCrashInjected
	// KCrashDetected: a survivor concluded a peer is dead. A=suspected proc
	// (-1 unknown), B=1 if detected via link death, 0 via barrier timeout.
	KCrashDetected
	// KRecoveryStart: the driver began coordinated rollback. A=epoch being
	// rolled back to, B=victim proc.
	KRecoveryStart
	// KRecoveryDone: rollback finished and re-execution resumed.
	// A=epoch, B=virtual ns rolled back, C=wall ns spent restoring.
	KRecoveryDone
	// KLockReclaim: a lock last held by the crashed proc was reclaimed by
	// its manager during restore. A=lock, B=dead holder.
	KLockReclaim
	// KShardCompare: a shard owner compared the bitmaps of its check-list
	// shard (sharded race check). A=shard check entries, B=bitmaps
	// compared, C=comparison work (virtual ns).
	KShardCompare
	// KShardReduce: a process forwarded its subtree's merged shard results
	// up the binary reduction tree. A=epoch, B=reports forwarded,
	// C=tree children merged.
	KShardReduce
	// KCkptChunk: one checkpoint encode's chunk-store activity. A=chunks
	// referenced, B=chunks deduplicated against resident ones, C=bytes
	// stored fresh.
	KCkptChunk
	// KCkptGC: checkpoint retention GC retired superseded epochs.
	// A=manifests retired, B=resident bytes released.
	KCkptGC
	// KCkptVerifyFail: a candidate recovery line was rejected because a
	// checkpoint manifest or its chunk closure failed verification; the
	// rollback fell back one epoch. A=rejected epoch.
	KCkptVerifyFail
	// KCkptCorrupt: the corruption plan damaged stored checkpoint chunks.
	// A=target epoch, B=chunks attacked, C=mode (dsm.CorruptMode).
	KCkptCorrupt
	// KTreeReduce: a combining-tree barrier node finished its subtree
	// reduction and forwarded it to its tree parent. A=epoch, B=interval
	// records merged, C=partial check-list build work (virtual ns).
	KTreeReduce
	// KTreeRelease: a process received the combining-tree release (one hop
	// of the downward cascade). A=epoch, B=tree children it was forwarded to.
	KTreeRelease
	// KGoSync: a gofront synchronization operation committed (goroutine
	// frontend). Proc=goroutine, A=op code (gofront.Op), B=object id,
	// C=interval index closed by the op.
	KGoSync
	// KGoCheck: the gofront detector checked a newly closed interval
	// against the retained concurrent history. A=pairs examined,
	// B=bitmaps compared, C=race reports produced.
	KGoCheck

	numKinds
)

var kindNames = [numKinds]string{
	KLog:            "Log",
	KPageFault:      "PageFault",
	KPageFetch:      "PageFetch",
	KOwnershipXfer:  "OwnershipXfer",
	KLockRequest:    "LockRequest",
	KLockForward:    "LockForward",
	KLockGrant:      "LockGrant",
	KLockAcquired:   "LockAcquired",
	KLockRelease:    "LockRelease",
	KBarrierArrive:  "BarrierArrive",
	KBarrierRelease: "BarrierRelease",
	KBarrierDepart:  "BarrierDepart",
	KIntervalClose:  "IntervalClose",
	KRaceCheck:      "RaceCheck",
	KRaceFound:      "RaceFound",
	KDiffFlush:      "DiffFlush",
	KRetransmit:     "Retransmit",
	KLinkDead:       "LinkDead",
	KWireDrop:       "WireDrop",
	KWireDup:        "WireDup",
	KWireReorder:    "WireReorder",
	KCheckpoint:     "Checkpoint",
	KCrashInjected:  "CrashInjected",
	KCrashDetected:  "CrashDetected",
	KRecoveryStart:  "RecoveryStart",
	KRecoveryDone:   "RecoveryDone",
	KLockReclaim:    "LockReclaim",
	KShardCompare:   "ShardCompare",
	KShardReduce:    "ShardReduce",
	KCkptChunk:      "CkptChunk",
	KCkptGC:         "CkptGC",
	KCkptVerifyFail: "CkptVerifyFail",
	KCkptCorrupt:    "CkptCorrupt",
	KTreeReduce:     "TreeReduce",
	KTreeRelease:    "TreeRelease",
	KGoSync:         "GoSync",
	KGoCheck:        "GoCheck",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// TripReason classifies why the flight recorder dumped. Typed reasons make
// trips countable in metric snapshots (telemetry_trips_total{reason=...}),
// not just visible in stderr dumps.
type TripReason uint8

const (
	// TripLinkDead: a reliable link exhausted its retry cap.
	TripLinkDead TripReason = iota
	// TripBarrierTimeout: a reply wait (barrier release, page fetch, lock
	// grant, ...) exceeded the configured wall-clock deadline.
	TripBarrierTimeout
	// TripProcPanic: a DSM app goroutine panicked.
	TripProcPanic
	// TripProcCrash: a survivor detected a crashed peer process.
	TripProcCrash
	// TripCkptVerify: a stored checkpoint failed integrity verification
	// during rollback planning (corrupt or missing chunks).
	TripCkptVerify

	numTripReasons
)

var tripReasonNames = [numTripReasons]string{
	TripLinkDead:       "LinkDead",
	TripBarrierTimeout: "BarrierTimeout",
	TripProcPanic:      "ProcPanic",
	TripProcCrash:      "ProcCrash",
	TripCkptVerify:     "CkptVerify",
}

func (t TripReason) String() string {
	if int(t) < len(tripReasonNames) && tripReasonNames[t] != "" {
		return tripReasonNames[t]
	}
	return fmt.Sprintf("TripReason(%d)", uint8(t))
}

// Event is one recorded protocol event.
type Event struct {
	Seq  uint64 // global record order (monotonic across all rings)
	Proc int32  // emitting process; -1 = system/global
	Kind Kind
	VT   int64 // virtual (costmodel) timestamp, ns
	Wall int64 // wall-clock ns since the recorder started
	A    int64 // kind-specific args; see the Kind docs
	B    int64
	C    int64
	Msg  string // KLog only
}

// String renders the event for flight dumps and debugging.
func (e Event) String() string {
	who := fmt.Sprintf("p%d", e.Proc)
	if e.Proc < 0 {
		who = "sys"
	}
	if e.Kind == KLog {
		return fmt.Sprintf("[%6d] %-3s vt=%-12d %s", e.Seq, who, e.VT, e.Msg)
	}
	return fmt.Sprintf("[%6d] %-3s vt=%-12d %-14s a=%d b=%d c=%d",
		e.Seq, who, e.VT, e.Kind, e.A, e.B, e.C)
}

// Config describes one Recorder.
type Config struct {
	// Procs is the number of per-process rings; 0 → 16. Events from procs
	// outside [0, Procs) land in a shared system ring.
	Procs int
	// Cap is the per-ring capacity in events; 0 → 8192, negative →
	// unbounded (the debuglog shim uses unbounded so tests see every
	// event).
	Cap int
	// CaptureLog records KLog string events (the debuglog shim). Off by
	// default: typed events carry the same information without the
	// formatting cost.
	CaptureLog bool
	// FlightN is how many trailing events a flight dump prints; 0 → 256.
	FlightN int
	// FlightSink receives flight-recorder dumps; nil → os.Stderr.
	FlightSink io.Writer
	// Metrics is the registry event-derived metrics update; nil → a fresh
	// registry, retrievable via Recorder.Metrics.
	Metrics *Registry
	// Observer, when non-nil, receives every recorded event synchronously
	// on the emitting goroutine, after the event has landed in its ring.
	// It is how a live consumer (the detection service's report store)
	// tails a recording session without polling the rings. Implementations
	// must be fast, safe for concurrent use, and must not call back into
	// the recorder.
	Observer func(Event)
	// TripObserver, when non-nil, receives every flight-recorder trip
	// (after the dump has been written to FlightSink), with the typed
	// reason and the free-form detail line. Same constraints as Observer.
	TripObserver func(reason TripReason, detail string)
}

func (c Config) withDefaults() Config {
	if c.Procs <= 0 {
		c.Procs = 16
	}
	if c.Cap == 0 {
		c.Cap = 8192
	}
	if c.FlightN <= 0 {
		c.FlightN = 256
	}
	if c.FlightSink == nil {
		c.FlightSink = os.Stderr
	}
	if c.Metrics == nil {
		c.Metrics = NewRegistry()
	}
	return c
}

// ring is one bounded (or unbounded) event buffer.
type ring struct {
	mu      sync.Mutex
	cap     int // <= 0: unbounded
	buf     []Event
	next    int  // bounded: index of the next write
	wrapped bool // bounded: buf is full and next overwrites
	dropped uint64
}

func (r *ring) add(e Event) {
	r.mu.Lock()
	if r.cap <= 0 {
		r.buf = append(r.buf, e)
	} else if len(r.buf) < r.cap {
		r.buf = append(r.buf, e)
		r.next = len(r.buf) % r.cap
	} else {
		r.buf[r.next] = e
		r.next = (r.next + 1) % r.cap
		r.wrapped = true
		r.dropped++
	}
	r.mu.Unlock()
}

// events returns the ring's contents in record order.
func (r *ring) events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.wrapped {
		return append([]Event(nil), r.buf...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Recorder is one recording session: per-process rings, a metrics
// registry, and the flight-dump sink.
type Recorder struct {
	cfg   Config
	start time.Time
	seq   atomic.Uint64
	rings []*ring // cfg.Procs + 1; the last is the system ring

	// Pre-resolved event-derived metrics (avoids registry lookups on the
	// emit path).
	evCount     [numKinds]*Counter
	tripCount   [numTripReasons]*Counter
	fetchHist   *Histogram
	barHist     *Histogram
	skewHist    *Histogram
	lockHist    *Histogram
	shardEnt    *Histogram
	shardCmp    *Histogram
	treeBuild   *Histogram
	treeReduces *Counter
	treeHops    *Counter
	ckptTotal   *Counter
	ckptBytes   *Counter
	ckptLogical *Counter
	chunkPuts   *Counter
	chunkHits   *Counter
	chunkBytes  *Counter
	verifyFails *Counter
	gcFreed     *Counter
	dedupRatio  *Gauge
	recTotal    *Counter
	recVirtual  *Counter
	recWall     *Counter
	recLocks    *Counter

	dumpMu sync.Mutex
	trips  atomic.Int64
}

// active is the installed recorder; nil means every event site is a single
// atomic load.
var active atomic.Pointer[Recorder]

// LatencyBuckets are the default histogram bounds for virtual-time
// latencies, in nanoseconds (50µs … 12.8ms; one wire hop is ~150µs).
var LatencyBuckets = []float64{
	50_000, 100_000, 200_000, 400_000, 800_000,
	1_600_000, 3_200_000, 6_400_000, 12_800_000,
}

// ShardSizeBuckets are the histogram bounds for per-shard check-list sizes
// (powers of two up to 256 entries).
var ShardSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// Start installs a new Recorder as the process-global destination of every
// zero-Scope event site and returns it. Any previous recorder is replaced
// (its contents remain readable through the returned value of the Start
// that created it) — which is exactly why two concurrent runs must NOT
// share the global: the second Start silently steals the first run's
// events and metrics. Concurrent sessions use New and scoped handles.
func Start(cfg Config) *Recorder {
	r := New(cfg)
	active.Store(r)
	return r
}

// New builds a Recorder without installing it globally: a handle-scoped
// recording session. Events reach it only through a Scope bound with To
// (or a layer configured with the handle, e.g. dsm.Config.Recorder), so
// any number of New recorders can record concurrently in one process.
func New(cfg Config) *Recorder {
	r := &Recorder{cfg: cfg.withDefaults(), start: time.Now()}
	r.rings = make([]*ring, r.cfg.Procs+1)
	for i := range r.rings {
		r.rings[i] = &ring{cap: r.cfg.Cap}
	}
	m := r.cfg.Metrics
	for k := Kind(0); k < numKinds; k++ {
		r.evCount[k] = m.Counter("telemetry_events_total",
			"Protocol events recorded, by kind.", Label{"kind", k.String()})
	}
	r.fetchHist = m.Histogram("dsm_page_fetch_latency_ns",
		"Virtual-time latency of remote page fetches.", LatencyBuckets)
	r.barHist = m.Histogram("dsm_barrier_wait_ns",
		"Virtual time spent waiting at barriers, per process per epoch.", LatencyBuckets)
	r.skewHist = m.Histogram("dsm_barrier_skew_ns",
		"Spread of virtual arrival times within one barrier epoch.", LatencyBuckets)
	r.lockHist = m.Histogram("dsm_lock_wait_ns",
		"Virtual time from lock request to grant arrival.", LatencyBuckets)
	r.shardEnt = m.Histogram("dsm_check_shard_entries",
		"Check-list entries per shard comparison (sharded race check).", ShardSizeBuckets)
	r.shardCmp = m.Histogram("dsm_check_shard_compare_ns",
		"Virtual-time cost of one shard's bitmap comparison.", LatencyBuckets)
	r.treeBuild = m.Histogram("dsm_barrier_tree_reduce_build_ns",
		"Virtual-time cost of one tree node's partial check-list build.", LatencyBuckets)
	r.treeReduces = m.Counter("dsm_barrier_tree_reduces_total",
		"Subtree reductions forwarded up the combining-tree barrier.")
	r.treeHops = m.Counter("dsm_barrier_tree_hops_total",
		"Release-cascade hops delivered down the combining-tree barrier.")
	for t := TripReason(0); t < numTripReasons; t++ {
		r.tripCount[t] = m.Counter("telemetry_trips_total",
			"Flight-recorder trips, by reason.", Label{"reason", t.String()})
	}
	r.ckptTotal = m.Counter("dsm_checkpoint_total",
		"Barrier-epoch checkpoints taken.")
	r.ckptBytes = m.Counter("dsm_checkpoint_bytes_total",
		"Serialized bytes across all barrier-epoch checkpoints.")
	r.ckptLogical = m.Counter("dsm_ckpt_logical_bytes_total",
		"Bytes checkpoints would occupy fully serialized, without chunk dedup.")
	r.chunkPuts = m.Counter("dsm_ckpt_chunk_puts_total",
		"Chunk references written by checkpoint encodes.")
	r.chunkHits = m.Counter("dsm_ckpt_chunk_hits_total",
		"Chunk references deduplicated against already-resident chunks.")
	r.chunkBytes = m.Counter("dsm_ckpt_chunk_bytes_total",
		"Bytes of fresh (previously unseen) chunk payloads stored.")
	r.verifyFails = m.Counter("dsm_ckpt_verify_failures_total",
		"Checkpoint recovery lines rejected by integrity verification.")
	r.gcFreed = m.Counter("dsm_ckpt_gc_freed_bytes_total",
		"Resident bytes released by checkpoint retention GC.")
	r.dedupRatio = m.Gauge("dsm_ckpt_dedup_ratio",
		"Stored checkpoint bytes (manifests + fresh chunks) over logical bytes; lower is better dedup.")
	r.recTotal = m.Counter("dsm_recovery_total",
		"Coordinated rollback recoveries completed.")
	r.recVirtual = m.Counter("dsm_recovery_virtual_ns_total",
		"Virtual time rolled back by recoveries (work re-executed).")
	r.recWall = m.Counter("dsm_recovery_wall_ns_total",
		"Wall time spent tearing down and restoring during recoveries.")
	r.recLocks = m.Counter("dsm_recovery_locks_reclaimed_total",
		"Locks last held by a crashed process, reclaimed during restore.")
	return r
}

// Scope is a nil-safe handle directing one layer's events at a specific
// recording session. The zero Scope is the process-global shim: events go
// to whatever recorder Start has installed, or nowhere at the cost of one
// atomic load. A bound Scope (To) bypasses the global entirely, so
// concurrent sessions cannot cross-talk. Scopes are values; copy freely.
type Scope struct{ r *Recorder }

// To returns a Scope bound to r; To(nil) is the zero (global) Scope.
func To(r *Recorder) Scope { return Scope{r: r} }

// Bound reports whether the scope is pinned to a specific recorder rather
// than following the process-global installation.
func (s Scope) Bound() bool { return s.r != nil }

// Recorder resolves the scope's destination: the bound recorder, or the
// currently installed global one (possibly nil).
func (s Scope) Recorder() *Recorder {
	if s.r != nil {
		return s.r
	}
	return active.Load()
}

// Enabled reports whether events emitted through this scope are recorded.
func (s Scope) Enabled() bool { return s.Recorder() != nil }

// Emit records one typed event through the scope; a no-op costing one
// pointer check (plus, unbound, one atomic load) when recording is off.
func (s Scope) Emit(proc int, k Kind, vt int64, a, b, c int64) {
	r := s.Recorder()
	if r == nil {
		return
	}
	r.emit(proc, k, vt, a, b, c, "")
}

// Logf records one formatted string event through the scope; a no-op
// unless the resolved recorder has CaptureLog set.
func (s Scope) Logf(proc int, vt int64, format string, args ...interface{}) {
	r := s.Recorder()
	if r == nil || !r.cfg.CaptureLog {
		return
	}
	r.emit(proc, KLog, vt, 0, 0, 0, fmt.Sprintf(format, args...))
}

// Trip triggers the scope's flight recorder (no-op when recording is off).
func (s Scope) Trip(reason TripReason, detail string) {
	if r := s.Recorder(); r != nil {
		r.Trip(reason, detail)
	}
}

// Stop uninstalls the recorder and returns it for inspection (nil if none
// was installed). Event sites go back to a single atomic load.
func Stop() *Recorder {
	return active.Swap(nil)
}

// Active returns the installed recorder, or nil.
func Active() *Recorder { return active.Load() }

// Enabled reports whether events are being recorded.
func Enabled() bool { return active.Load() != nil }

// LogCaptureEnabled reports whether KLog string events are being recorded
// (the debuglog shim's enable state).
func LogCaptureEnabled() bool {
	r := active.Load()
	return r != nil && r.cfg.CaptureLog
}

// Emit records one typed event; it is a no-op costing one atomic load when
// recording is off. vt is the emitter's virtual clock.
func Emit(proc int, k Kind, vt int64, a, b, c int64) {
	r := active.Load()
	if r == nil {
		return
	}
	r.emit(proc, k, vt, a, b, c, "")
}

// Logf records one formatted string event (the debuglog shim); it is a
// no-op unless a recorder with CaptureLog is installed.
func Logf(proc int, vt int64, format string, args ...interface{}) {
	r := active.Load()
	if r == nil || !r.cfg.CaptureLog {
		return
	}
	r.emit(proc, KLog, vt, 0, 0, 0, fmt.Sprintf(format, args...))
}

// Trip triggers a flight-recorder dump on the global recorder with the
// given typed reason and a free-form detail line (no-op when recording is
// off). Layers call it at the moments the paper's user would want a core
// dump of the cluster: retry-cap exhaustion, barrier timeout, process
// panic, peer crash.
func Trip(reason TripReason, detail string) {
	Scope{}.Trip(reason, detail)
}

// Trip dumps this recorder's flight buffer with the given typed reason and
// detail line, and counts the trip in telemetry_trips_total.
func (r *Recorder) Trip(reason TripReason, detail string) {
	r.trips.Add(1)
	if int(reason) < len(r.tripCount) && r.tripCount[reason] != nil {
		r.tripCount[reason].Add(1)
	}
	r.DumpFlight(r.cfg.FlightSink, fmt.Sprintf("%s: %s", reason, detail))
	if r.cfg.TripObserver != nil {
		r.cfg.TripObserver(reason, detail)
	}
}

// Trips returns how many flight dumps this recorder has produced.
func (r *Recorder) Trips() int64 { return r.trips.Load() }

func (r *Recorder) emit(proc int, k Kind, vt int64, a, b, c int64, msg string) {
	e := Event{
		Seq:  r.seq.Add(1),
		Proc: int32(proc),
		Kind: k,
		VT:   vt,
		Wall: int64(time.Since(r.start)),
		A:    a, B: b, C: c,
		Msg: msg,
	}
	r.ring(proc).add(e)
	r.evCount[k].Add(1)
	switch k {
	case KPageFetch:
		r.fetchHist.Observe(float64(c))
	case KBarrierDepart:
		r.barHist.Observe(float64(c))
	case KBarrierRelease:
		r.skewHist.Observe(float64(c))
	case KLockAcquired:
		r.lockHist.Observe(float64(c))
	case KCheckpoint:
		r.ckptTotal.Add(1)
		r.ckptBytes.Add(b)
		r.ckptLogical.Add(c)
		r.updateDedupRatio()
	case KCkptChunk:
		r.chunkPuts.Add(a)
		r.chunkHits.Add(b)
		r.chunkBytes.Add(c)
		r.updateDedupRatio()
	case KCkptGC:
		r.gcFreed.Add(b)
	case KCkptVerifyFail:
		r.verifyFails.Add(1)
	case KRecoveryDone:
		r.recTotal.Add(1)
		r.recVirtual.Add(b)
		r.recWall.Add(c)
	case KLockReclaim:
		r.recLocks.Add(1)
	case KShardCompare:
		r.shardEnt.Observe(float64(a))
		r.shardCmp.Observe(float64(c))
	case KTreeReduce:
		r.treeBuild.Observe(float64(c))
		r.treeReduces.Add(1)
	case KTreeRelease:
		r.treeHops.Add(1)
	}
	if r.cfg.Observer != nil {
		r.cfg.Observer(e)
	}
}

// updateDedupRatio recomputes dsm_ckpt_dedup_ratio from the stored-bytes
// and logical-bytes counters: (manifests + fresh chunk payloads) over what
// full serialization would have written. 1.0 means no structural sharing;
// values approach 1/N when all N processes checkpoint identical pages.
func (r *Recorder) updateDedupRatio() {
	logical := r.ckptLogical.Value()
	if logical <= 0 {
		return
	}
	stored := r.ckptBytes.Value() + r.chunkBytes.Value()
	r.dedupRatio.Set(float64(stored) / float64(logical))
}

func (r *Recorder) ring(proc int) *ring {
	if proc < 0 || proc >= r.cfg.Procs {
		return r.rings[r.cfg.Procs]
	}
	return r.rings[proc]
}

// Procs returns the number of per-process rings.
func (r *Recorder) Procs() int { return r.cfg.Procs }

// Metrics returns the recorder's metrics registry.
func (r *Recorder) Metrics() *Registry { return r.cfg.Metrics }

// ProcEvents returns the retained events of one process's ring (proc -1 or
// out of range selects the system ring) in record order.
func (r *Recorder) ProcEvents(proc int) []Event {
	return r.ring(proc).events()
}

// Events returns every retained event across all rings in global record
// order (by sequence number). Bounded rings may have dropped older events;
// see Dropped.
func (r *Recorder) Events() []Event {
	var out []Event
	for _, rg := range r.rings {
		out = append(out, rg.events()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Dropped returns how many events bounded rings have overwritten.
func (r *Recorder) Dropped() uint64 {
	var n uint64
	for _, rg := range r.rings {
		rg.mu.Lock()
		n += rg.dropped
		rg.mu.Unlock()
	}
	return n
}

// DumpFlight writes the last FlightN retained events (merged across rings,
// global record order) to w, prefixed by the reason — the "black box" read
// out after a failure.
func (r *Recorder) DumpFlight(w io.Writer, reason string) {
	r.dumpMu.Lock()
	defer r.dumpMu.Unlock()
	evs := r.Events()
	n := r.cfg.FlightN
	if len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	fmt.Fprintf(w, "--- flight recorder: %s ---\n", reason)
	fmt.Fprintf(w, "last %d of %d retained events (%d overwritten):\n",
		len(evs), r.seq.Load(), r.Dropped())
	for _, e := range evs {
		fmt.Fprintln(w, e.String())
	}
	fmt.Fprintf(w, "--- end flight dump ---\n")
}
