package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("reqs_total", "Requests.", Label{"proc", "0"})
	c.Add(3)
	c.Add(4)
	if c.Value() != 7 {
		t.Fatalf("counter = %d, want 7", c.Value())
	}
	// Same name+labels returns the same instrument.
	if reg.Counter("reqs_total", "Requests.", Label{"proc", "0"}) != c {
		t.Fatal("counter handle not shared")
	}

	g := reg.Gauge("temp", "Temperature.")
	g.Set(1.5)
	g.Set(2.25)
	if g.Value() != 2.25 {
		t.Fatalf("gauge = %v, want 2.25", g.Value())
	}

	h := reg.Histogram("lat", "Latency.", []float64{10, 100, 1000})
	for _, v := range []float64{5, 50, 500, 5000, 7} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("hist count = %d, want 5", h.Count())
	}
	if h.Sum() != 5562 {
		t.Fatalf("hist sum = %v, want 5562", h.Sum())
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	reg.Gauge("x", "")
}

func TestWritePromFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("msgs_total", "Messages.", Label{"type", "LockReq"}).Add(4)
	reg.Counter("msgs_total", "Messages.", Label{"type", "Barrier"}).Add(2)
	reg.Gauge("vtime_ns", "Virtual time.").Set(1500000)
	reg.Histogram("wait_ns", "Wait.", []float64{10, 20}).Observe(15)
	reg.Histogram("wait_ns", "Wait.", []float64{10, 20}).Observe(25)

	var b bytes.Buffer
	if err := reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP msgs_total Messages.
# TYPE msgs_total counter
msgs_total{type="LockReq"} 4
msgs_total{type="Barrier"} 2
# HELP vtime_ns Virtual time.
# TYPE vtime_ns gauge
vtime_ns 1500000
# HELP wait_ns Wait.
# TYPE wait_ns histogram
wait_ns_bucket{le="10"} 0
wait_ns_bucket{le="20"} 1
wait_ns_bucket{le="+Inf"} 2
wait_ns_sum 40
wait_ns_count 2
`
	if got := b.String(); got != want {
		t.Fatalf("WriteProm output:\n%s\nwant:\n%s", got, want)
	}

	// Deterministic: a second exposition is byte-identical.
	var b2 bytes.Buffer
	if err := reg.WriteProm(&b2); err != nil {
		t.Fatal(err)
	}
	if b.String() != b2.String() {
		t.Fatal("WriteProm is not deterministic")
	}
}

func TestSnapshotAndCounterTotal(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("net_bytes_total", "", Label{"type", "A"}).Add(100)
	reg.Counter("net_bytes_total", "", Label{"type", "B"}).Add(50)
	reg.Counter("net_bytes", "", Label{"type", "C"}).Add(999) // prefix trap
	reg.Gauge("run_ns", "").Set(42)
	reg.Histogram("lat", "", []float64{10}).Observe(3)

	s := reg.Snapshot()
	if got := s.Counters[`net_bytes_total{type="A"}`]; got != 100 {
		t.Fatalf("snapshot counter = %d, want 100", got)
	}
	if got := s.CounterTotal("net_bytes_total"); got != 150 {
		t.Fatalf("CounterTotal = %d, want 150 (must not include net_bytes)", got)
	}
	if s.Gauges["run_ns"] != 42 {
		t.Fatalf("snapshot gauge = %v", s.Gauges["run_ns"])
	}
	h := s.Histograms["lat"]
	if h.Count != 1 || h.Sum != 3 || len(h.Buckets) != 1 || h.Buckets[0].Count != 1 {
		t.Fatalf("snapshot histogram = %+v", h)
	}

	// JSON round-trip.
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.CounterTotal("net_bytes_total") != 150 {
		t.Fatal("snapshot JSON round-trip lost counters")
	}
}

func TestLabelKeyOrderInsensitive(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("m", "", Label{"x", "1"}, Label{"y", "2"})
	b := reg.Counter("m", "", Label{"y", "2"}, Label{"x", "1"})
	if a != b {
		t.Fatal("label order changed series identity")
	}
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `m{x="1",y="2"} 0`) {
		t.Fatalf("labels not sorted in exposition:\n%s", buf.String())
	}
}
