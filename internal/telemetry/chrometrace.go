package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// WriteChromeTrace exports the retained events as Chrome trace-event JSON
// (the format Perfetto and chrome://tracing load): one track (tid) per
// process plus a "system" track, timestamps in microseconds of *virtual*
// time — so a run renders as the cluster timeline the cost model defines,
// and two runs with identical virtual behavior export byte-identical
// traces regardless of real scheduling.
//
// Wait-shaped events (lock waits, barrier waits, page fetches) export as
// complete ("X") slices spanning their virtual duration; everything else
// is an instant event. KLog string events are exported only when log
// capture was on.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	enc := func(v interface{}, first bool) error {
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		if !first {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
		_, err = bw.Write(b)
		return err
	}

	first := true
	put := func(v interface{}) error {
		err := enc(v, first)
		first = false
		return err
	}

	// Metadata: name the process and one thread per track.
	if err := put(chromeEvent{Ph: "M", Name: "process_name", Pid: 0, Tid: 0,
		Args: map[string]interface{}{"name": "lrcrace cluster"}}); err != nil {
		return err
	}
	sysTid := r.cfg.Procs
	for tid := 0; tid <= sysTid; tid++ {
		name := fmt.Sprintf("proc %d", tid)
		if tid == sysTid {
			name = "system"
		}
		if err := put(chromeEvent{Ph: "M", Name: "thread_name", Pid: 0, Tid: tid,
			Args: map[string]interface{}{"name": name}}); err != nil {
			return err
		}
	}

	for tid := 0; tid <= sysTid; tid++ {
		evs := r.rings[tid].events()
		// Canonical order: virtual time, then kind and args. Sequence
		// numbers are assigned in real-time order and would leak
		// scheduling nondeterminism into the export.
		sort.Slice(evs, func(i, j int) bool { return eventLess(evs[i], evs[j]) })
		for _, e := range evs {
			if err := put(chromeFor(e, tid)); err != nil {
				return err
			}
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

func eventLess(a, b Event) bool {
	if a.VT != b.VT {
		return a.VT < b.VT
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.A != b.A {
		return a.A < b.A
	}
	if a.B != b.B {
		return a.B < b.B
	}
	if a.C != b.C {
		return a.C < b.C
	}
	return a.Msg < b.Msg
}

// chromeEvent is one trace-event JSON object. encoding/json marshals map
// keys sorted, so the output is deterministic for a fixed event sequence.
type chromeEvent struct {
	Name string                 `json:"name"`
	Ph   string                 `json:"ph"`
	Ts   float64                `json:"ts"`
	Dur  float64                `json:"dur,omitempty"`
	Pid  int                    `json:"pid"`
	Tid  int                    `json:"tid"`
	S    string                 `json:"s,omitempty"`
	Args map[string]interface{} `json:"args,omitempty"`
}

const usPerNs = 1e-3

// chromeFor maps one recorded event to its trace-event form.
func chromeFor(e Event, tid int) chromeEvent {
	ce := chromeEvent{Name: e.Kind.String(), Ph: "i", S: "t", Pid: 0, Tid: tid,
		Ts: float64(e.VT) * usPerNs}
	args := map[string]interface{}{}
	span := func(name string, durNS int64) {
		ce.Name = name
		ce.Ph = "X"
		ce.S = ""
		ce.Ts = float64(e.VT-durNS) * usPerNs
		ce.Dur = float64(durNS) * usPerNs
	}
	switch e.Kind {
	case KLog:
		args["msg"] = e.Msg
	case KPageFault:
		args["page"] = e.A
		if e.B != 0 {
			args["write"] = true
		}
	case KPageFetch:
		span("page fetch", e.C)
		args["page"], args["from"] = e.A, e.B
	case KOwnershipXfer:
		args["page"], args["to"] = e.A, e.B
	case KLockRequest, KLockRelease:
		args["lock"] = e.A
	case KLockForward:
		args["lock"], args["requester"], args["holder"] = e.A, e.B, e.C
	case KLockGrant:
		args["lock"], args["requester"], args["records"] = e.A, e.B, e.C
	case KLockAcquired:
		span("lock wait", e.C)
		args["lock"], args["granter"] = e.A, e.B
	case KBarrierArrive:
		args["epoch"] = e.A
	case KBarrierRelease:
		args["epoch"], args["records"], args["skew_ns"] = e.A, e.B, e.C
	case KBarrierDepart:
		span("barrier wait", e.C)
		args["epoch"] = e.A
	case KIntervalClose:
		args["interval"], args["writes"], args["reads"] = e.A, e.B, e.C
	case KRaceCheck:
		args["checks"], args["bitmaps"], args["races"] = e.A, e.B, e.C
	case KRaceFound:
		args["addr"], args["epoch"] = e.A, e.B
		if e.C != 0 {
			args["write_write"] = true
		}
	case KDiffFlush:
		args["page"], args["words"] = e.A, e.B
	case KRetransmit:
		args["to"], args["resent"], args["round"] = e.A, e.B, e.C
	case KLinkDead:
		args["to"], args["unacked"], args["cap"] = e.A, e.B, e.C
	case KWireDrop, KWireDup, KWireReorder:
		args["to"], args["msg_type"] = e.A, e.B
	default:
		args["a"], args["b"], args["c"] = e.A, e.B, e.C
	}
	ce.Args = args
	return ce
}
