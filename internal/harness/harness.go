// Package harness runs the benchmark applications on the DSM under
// controlled configurations and derives every metric the paper's evaluation
// reports: Table 1 (application characteristics and slowdown), Table 2
// (static instrumentation statistics), Table 3 (dynamic metrics), Figure 3
// (overhead breakdown) and Figure 4 (slowdown versus processors).
package harness

import (
	"fmt"
	"time"

	"lrcrace/internal/apps"
	"lrcrace/internal/costmodel"
	"lrcrace/internal/dsm"
	"lrcrace/internal/gofront"
	"lrcrace/internal/msg"
	"lrcrace/internal/race"
	"lrcrace/internal/reliable"
	"lrcrace/internal/simnet"
	"lrcrace/internal/telemetry"

	// Register the four benchmark applications and the go-frontend
	// workload family.
	_ "lrcrace/internal/apps/fft"
	_ "lrcrace/internal/apps/kv"
	_ "lrcrace/internal/apps/sor"
	_ "lrcrace/internal/apps/tsp"
	_ "lrcrace/internal/apps/water"
)

// RunConfig describes one experiment run.
type RunConfig struct {
	App   string  // "FFT", "SOR", "TSP", "Water" — or a gofront workload
	Scale float64 // problem scale; 0 → 1 (laptop default)
	Procs int
	// Frontend selects the execution engine: "" or "dsm" runs App on the
	// simulated DSM; "go" runs App as a Go-native workload under the
	// gofront happens-before frontend (goroutines, channels, and locks
	// translated to interval-based detection), with Procs as the client
	// count. See docs/GOFRONT.md.
	Frontend string
	// HotKeySkew is the go-frontend hot-key probability in [0,1).
	HotKeySkew float64
	// Racy plants the go-frontend workload's racy fast path.
	Racy bool
	// OpsPerClient overrides the go-frontend per-client op count (0 → the
	// workload default scaled by Scale).
	OpsPerClient int
	// Seed drives the go-frontend scheduler and traffic PRNGs.
	Seed              int64
	Protocol          dsm.ProtocolKind
	Detect            bool
	FirstOnly         bool
	PageBitmapOverlap bool
	WritesFromDiffs   bool
	// ShardedCheck distributes the barrier-time race check across all
	// processes (check-list partition by page, binary-tree result
	// reduction) instead of serializing it at the master. Requires Detect.
	ShardedCheck bool
	// BarrierTree replaces the flat all-to-master barrier with a combining
	// tree of this arity (dsm.Config.BarrierTree): arrivals reduce up the
	// tree with per-hop partial check-list builds, releases broadcast down.
	// 0 → flat barrier; arity ≥ 2 otherwise. Composes with ShardedCheck.
	BarrierTree int
	// RealMsgDelay couples real scheduling to wire latency; needed by the
	// lock-queue application (TSP) at small scales. 0 → per-app default.
	RealMsgDelay time.Duration
	// Faults injects deterministic wire faults (drops, duplicates,
	// reordering, jitter) into the simulated network; a lossy plan
	// requires Reliable.
	Faults *simnet.FaultPlan
	// Reliable layers CVM-style end-to-end retransmission over the wire.
	Reliable bool
	// ReliableConfig tunes the retransmission sublayer's timers.
	ReliableConfig reliable.Config
	// BarrierWallTimeout bounds the real time a process waits for a
	// barrier release before tripping the flight recorder and aborting.
	BarrierWallTimeout time.Duration
	// NoCheckpoint disables the always-on barrier-epoch checkpointing, for
	// measuring the DSM without the recovery layer's cost. By default every
	// run records the serialized recovery state alongside the paper's
	// metrics (see Result.Checkpoint and docs/ROBUSTNESS.md).
	NoCheckpoint bool
	// CheckpointRetain overrides how many epoch lines the checkpoint store
	// keeps behind the newest common epoch (dsm.Config.CheckpointRetain):
	// 0 → the default tail of 2, negative → keep everything.
	CheckpointRetain int
	// CrashMode selects deterministic crash injection for the chaos
	// applications ("ChaosTSP", "ChaosMW"): "" or "none" (off), "single",
	// "double" (two victims), "recovery" (second crash arms only during
	// recovery). Non-chaos apps are whole-program bodies and cannot
	// recover, so crash modes are rejected for them.
	CrashMode string
	// CorruptMode attacks stored checkpoint chunks once the crash epoch's
	// line is complete: "" or "none" (off), "chunk" (bit-flip), "delete"
	// (drop payload). Requires a CrashMode so recovery exercises the
	// verify-then-fallback path.
	CorruptMode string
	// ChaosSeed drives the seed-derived crash/corruption plans.
	ChaosSeed uint64
	// Epochs is the chaos applications' barrier-epoch count; 0 → 4.
	Epochs int
	// Telemetry, when non-nil, builds a handle-scoped telemetry recorder
	// for the run (Procs defaults to the run's process count). The recorder
	// is private to this run — concurrent Runs in one process do not share
	// rings or metrics — and is available as Result.Telemetry; its metrics
	// registry additionally receives the run's raw counters (FillMetrics).
	Telemetry *telemetry.Config
	// Recorder, when non-nil, supplies a pre-built recorder (telemetry.New)
	// instead of having Run build one from Telemetry. The caller keeps the
	// handle for the whole run, which is what lets a live /metrics endpoint
	// scrape a run in flight. Takes precedence over Telemetry.
	Recorder *telemetry.Recorder
	// Tracer optionally observes the run (reference detectors, trace logs).
	Tracer dsm.Tracer
	// Verify runs the application's result check (on by default via Run).
	SkipVerify bool
}

// Result collects everything a run produced.
type Result struct {
	Cfg   RunConfig
	App   apps.App
	Sys   *dsm.System
	Model costmodel.Model

	VirtualNS int64
	WallNS    int64
	Races     []race.Report
	Det       race.Stats
	Net       simnet.Stats
	Procs     []dsm.Stats
	MemBytes  int

	// Checkpoint and Recovery summarize the run's crash-tolerance costs:
	// how many barrier-epoch checkpoints were serialized and how large, and
	// what any coordinated rollbacks cost in re-executed virtual time and
	// restore wall time. Zero-valued only when RunConfig.NoCheckpoint
	// disabled the layer.
	Checkpoint dsm.CheckpointStats
	Recovery   dsm.RecoveryStats

	// Telemetry is the run's stopped recorder when RunConfig.Telemetry was
	// set (its metrics registry already includes the run's raw counters).
	Telemetry *telemetry.Recorder

	// GoFront is the go-frontend result when RunConfig.Frontend was "go";
	// Sys, Model, Det, Net, and Procs stay zero-valued for such runs.
	GoFront *gofront.Result
}

// appDefaultDelay gives TSP its real-latency coupling by default.
func appDefaultDelay(app string) time.Duration {
	if app == "TSP" {
		return 20 * time.Microsecond
	}
	return 0
}

// Run executes one configuration and verifies the application result.
func Run(cfg RunConfig) (*Result, error) {
	if cfg.Scale == 0 {
		cfg.Scale = 1
	}
	if err := ValidateRunConfig(cfg); err != nil {
		return nil, err
	}
	if IsGoFrontend(cfg.Frontend) {
		return runGoFront(cfg)
	}
	if IsChaosApp(cfg.App) {
		return runChaos(cfg)
	}
	app, err := apps.New(cfg.App, cfg.Scale)
	if err != nil {
		return nil, err
	}
	delay := cfg.RealMsgDelay
	if delay == 0 {
		delay = appDefaultDelay(cfg.App)
	}
	rec := cfg.Recorder
	if rec == nil && cfg.Telemetry != nil {
		tc := *cfg.Telemetry
		if tc.Procs == 0 {
			tc.Procs = cfg.Procs
		}
		rec = telemetry.New(tc)
	}
	sys, err := dsm.New(dsm.Config{
		NumProcs:           cfg.Procs,
		SharedSize:         app.SharedBytes(),
		Protocol:           cfg.Protocol,
		Detect:             cfg.Detect,
		ShardedCheck:       cfg.ShardedCheck,
		BarrierTree:        cfg.BarrierTree,
		FirstOnly:          cfg.FirstOnly,
		PageBitmapOverlap:  cfg.PageBitmapOverlap,
		WritesFromDiffs:    cfg.WritesFromDiffs,
		RealMsgDelay:       delay,
		Tracer:             cfg.Tracer,
		Faults:             cfg.Faults,
		Reliable:           cfg.Reliable,
		ReliableConfig:     cfg.ReliableConfig,
		BarrierWallTimeout: cfg.BarrierWallTimeout,
		NoCheckpoint:       cfg.NoCheckpoint,
		CheckpointRetain:   cfg.CheckpointRetain,
		Recorder:           rec,
	})
	if err != nil {
		return nil, err
	}
	if err := app.Setup(sys); err != nil {
		return nil, err
	}
	start := time.Now()
	if err := sys.Run(app.Worker); err != nil {
		return nil, err
	}
	wall := time.Since(start)
	if !cfg.SkipVerify {
		if err := app.Verify(sys); err != nil {
			return nil, fmt.Errorf("harness: %s failed verification: %w", cfg.App, err)
		}
	}
	res := &Result{
		Cfg:       cfg,
		App:       app,
		Sys:       sys,
		Model:     sys.Config().Model,
		VirtualNS: sys.VirtualTime(),
		WallNS:    wall.Nanoseconds(),
		Races:     sys.Races(),
		Det:       sys.DetectorStats(),
		Net:       sys.NetStats(),
		MemBytes:  sys.AllocBytes(),

		Checkpoint: sys.CheckpointStats(),
		Recovery:   sys.RecoveryStats(),
	}
	for _, p := range sys.Procs() {
		res.Procs = append(res.Procs, p.Stats())
	}
	if rec != nil {
		res.Telemetry = rec
		res.FillMetrics(rec.Metrics())
	}
	return res, nil
}

// Pair runs the same configuration with detection off (baseline) and on.
func Pair(cfg RunConfig) (base, det *Result, err error) {
	cfg.Detect = false
	if base, err = Run(cfg); err != nil {
		return nil, nil, err
	}
	cfg.Detect = true
	if det, err = Run(cfg); err != nil {
		return nil, nil, err
	}
	return base, det, nil
}

// Slowdown is the virtual-time ratio detected/baseline.
func Slowdown(base, det *Result) float64 {
	return float64(det.VirtualNS) / float64(base.VirtualNS)
}

// IntervalsPerBarrier is the average number of interval structures created
// per process per barrier epoch (Table 1, "Intervals Per Barrier").
func (r *Result) IntervalsPerBarrier() float64 {
	var intervals, barriers int64
	for _, st := range r.Procs {
		intervals += st.IntervalsCreated
		barriers += st.Barriers
	}
	if barriers == 0 {
		return 0
	}
	return float64(intervals) / float64(barriers)
}

// IntervalsUsedPct is the fraction of intervals involved in at least one
// concurrent overlapping pair (Table 3 column 1).
func (r *Result) IntervalsUsedPct() float64 {
	if r.Det.IntervalsTotal == 0 {
		return 0
	}
	return 100 * float64(r.Det.IntervalsInvolved) / float64(r.Det.IntervalsTotal)
}

// BitmapsUsedPct is the fraction of access bitmaps that had to be retrieved
// for comparison (Table 3 column 2).
func (r *Result) BitmapsUsedPct() float64 {
	var created, sent int64
	for _, st := range r.Procs {
		created += st.BitmapsCreated
		sent += st.BitmapsSent
	}
	if created == 0 {
		return 0
	}
	return 100 * float64(sent) / float64(created)
}

// MsgOverheadPct is the bandwidth added by read notices, relative to all
// other traffic the system sends — page fetches included (Table 3 column
// 3: page-heavy applications like SOR dilute the notices to ~1%, while
// fine-grained-synchronization Water pays ~48%). The bitmap round is
// accounted under the Bitmaps overhead, not here.
func (r *Result) MsgOverheadPct() float64 {
	var rn int64
	for _, st := range r.Procs {
		rn += st.ReadNoticeBytes
	}
	total := r.Net.TotalBytes()
	bm := r.Net.Bytes[msg.TBitmapReply] + r.Net.Bytes[msg.TShardResult] +
		r.Net.Bytes[msg.TBarrierDone]
	rest := total - bm - rn
	if rest <= 0 {
		return 0
	}
	return 100 * float64(rn) / float64(rest)
}

// AccessRates returns instrumented shared and private accesses per virtual
// second (Table 3 columns 4–5).
func (r *Result) AccessRates() (shared, private float64) {
	var sh, pr int64
	for _, st := range r.Procs {
		sh += st.SharedReads + st.SharedWrites
		pr += st.PrivateAccesses
	}
	secs := float64(r.VirtualNS) / 1e9
	if secs == 0 {
		return 0, 0
	}
	return float64(sh) / secs, float64(pr) / secs
}

// Overheads is the Figure 3 decomposition, each component as a percentage
// of the baseline (uninstrumented) virtual runtime.
type Overheads struct {
	CVMMods, ProcCall, AccessCheck, Intervals, Bitmaps float64
}

// Total returns the summed component overhead percentage.
func (o Overheads) Total() float64 {
	return o.CVMMods + o.ProcCall + o.AccessCheck + o.Intervals + o.Bitmaps
}

// Breakdown computes the overhead components of det relative to base.
// Per-access instrumentation accrues in parallel on every process (averaged
// per process); interval and bitmap comparison are serialized at the master
// and charged in full; the read-notice bandwidth and the extra barrier
// round are charged as wire time.
func Breakdown(base, det *Result) Overheads {
	n := float64(len(det.Procs))
	bt := float64(base.VirtualNS)
	m := det.Model

	var procCall, accessCheck, cvmMods, readNoticeBytes int64
	var intervalCmp, bitmapCmp int64
	for _, st := range det.Procs {
		procCall += st.TProcCall
		accessCheck += st.TAccessCheck
		cvmMods += st.TCVMMods
		readNoticeBytes += st.ReadNoticeBytes
		intervalCmp += st.TIntervalCmp
		bitmapCmp += st.TBitmapCmp
	}
	// Extra barrier round: bitmap replies, shard-result reductions (sharded
	// check only), and done messages.
	bmBytes := det.Net.Bytes[msg.TBitmapReply] + det.Net.Bytes[msg.TShardResult] +
		det.Net.Bytes[msg.TBarrierDone]
	bmMsgs := det.Net.Messages[msg.TBitmapReply] + det.Net.Messages[msg.TShardResult] +
		det.Net.Messages[msg.TBarrierDone]
	bmWire := float64(bmBytes)*m.PerByte + float64(bmMsgs*m.MsgLatency)/n

	o := Overheads{
		ProcCall:    100 * float64(procCall) / n / bt,
		AccessCheck: 100 * float64(accessCheck) / n / bt,
		CVMMods:     100 * (float64(cvmMods)/n + float64(readNoticeBytes)*m.PerByte/n) / bt,
		Intervals:   100 * float64(intervalCmp) / bt,
		Bitmaps:     100 * (float64(bitmapCmp) + bmWire) / bt,
	}
	return o
}

// RacyVariables maps the detected races to shared-variable names via the
// symbol table, deduplicated, preserving first-report order.
func (r *Result) RacyVariables() []string {
	seen := map[string]bool{}
	var out []string
	for _, rep := range race.DedupByAddr(r.Races) {
		name := fmt.Sprintf("0x%x", uint64(rep.Addr))
		if r.GoFront != nil {
			if sym, ok := r.GoFront.SymbolAt(rep.Addr); ok {
				name = sym
			}
		} else if sym, ok := r.Sys.SymbolAt(rep.Addr); ok {
			name = sym.Name
		}
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	return out
}
