package harness

import (
	"fmt"
	"io"
)

// Enhancements quantifies the paper's §6.5 "Further Performance
// Enhancements" from a measured run's counters:
//
//  1. Inlining the instrumentation (the promised ATOM feature) removes the
//     procedure-call overhead — the paper expects ≈6.7% of overhead.
//  2. Under the multi-writer protocol, write bitmaps can come from diffs,
//     so store instrumentation disappears — the paper expects ≥17% of
//     overhead ("approximately 25% of all data accesses are stores").
//  3. Inter-procedural analysis would prove many instrumented-but-private
//     accesses private — the paper reports ≈68% of analysis calls are for
//     private data; IPAFraction is the share of those assumed eliminated.
//
// All three are computed from the run's actual access counters and the
// cost model, so the prediction method is the paper's own: measured call
// counts × per-call cost.
type Enhancements struct {
	BaseOverheadPct float64 // measured total overhead (slowdown−1)

	InlinedPct   float64 // overhead with proc-call cost removed
	DiffWritePct float64 // overhead with store instrumentation removed
	IPAPct       float64 // overhead with IPAFraction of private calls removed
	CombinedPct  float64 // all three together

	StoreShare   float64 // stores / (all shared accesses), cf. paper's ~25%
	PrivateShare float64 // private calls / all instrumented calls, cf. ~68%
}

// IPAFraction is the share of instrumented-but-private calls assumed
// removable by inter-procedural analysis (the paper says "many"; we use a
// conservative half).
const IPAFraction = 0.5

// ComputeEnhancements derives the §6.5 predictions for one baseline/detect
// pair.
func ComputeEnhancements(base, det *Result) Enhancements {
	m := det.Model
	n := float64(len(det.Procs))
	bt := float64(base.VirtualNS)

	var reads, writes, private int64
	for _, st := range det.Procs {
		reads += st.SharedReads
		writes += st.SharedWrites
		private += st.PrivateAccesses
	}
	calls := reads + writes + private
	instr := float64(calls) * float64(m.InstrCost()) / n / bt * 100
	procCall := float64(calls) * float64(m.ProcCall) / n / bt * 100
	storeInstr := float64(writes) * float64(m.InstrCost()) / n / bt * 100
	ipa := IPAFraction * float64(private) * float64(m.InstrCost()) / n / bt * 100

	total := 100 * (float64(det.VirtualNS) - float64(base.VirtualNS)) / bt
	e := Enhancements{
		BaseOverheadPct: total,
		InlinedPct:      total - procCall,
		DiffWritePct:    total - storeInstr,
		IPAPct:          total - ipa,
		CombinedPct:     total - procCall - storeInstr - ipa,
	}
	if reads+writes > 0 {
		e.StoreShare = float64(writes) / float64(reads+writes)
	}
	if calls > 0 {
		e.PrivateShare = float64(private) / float64(calls)
	}
	_ = instr
	return e
}

// EnhancementsTable prints the §6.5 predictions for every application.
func (s *Suite) EnhancementsTable(w io.Writer) error {
	fmt.Fprintf(w, "§6.5 Enhancements: predicted overhead after each optimization (%% of base runtime, %d procs)\n", s.Procs)
	fmt.Fprintf(w, "%-7s %10s %10s %12s %8s %10s %12s %13s\n",
		"", "Measured", "Inlined", "Diff-writes", "IPA", "Combined", "store share", "private share")
	for _, app := range AppNames {
		base, det, err := s.pair(app, s.Procs)
		if err != nil {
			return err
		}
		e := ComputeEnhancements(base, det)
		fmt.Fprintf(w, "%-7s %9.1f%% %9.1f%% %11.1f%% %7.1f%% %9.1f%% %11.0f%% %12.0f%%\n",
			app, e.BaseOverheadPct, e.InlinedPct, e.DiffWritePct, e.IPAPct, e.CombinedPct,
			100*e.StoreShare, 100*e.PrivateShare)
	}
	fmt.Fprintln(w, "(paper: inlining removes ≈6.7% of overhead; diff-writes ≥17%; ≈68% of calls are private)")
	return nil
}
