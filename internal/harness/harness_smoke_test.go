package harness

import (
	"os"
	"testing"
)

func TestSmokeTables(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := NewSuite(1, 8)
	if err := s.Table1(os.Stdout); err != nil {
		t.Fatal(err)
	}
	Table2(os.Stdout)
	if err := s.Table3(os.Stdout); err != nil {
		t.Fatal(err)
	}
	if err := s.Figure3(os.Stdout); err != nil {
		t.Fatal(err)
	}
	if err := s.Figure4(os.Stdout, []int{2, 4, 8}); err != nil {
		t.Fatal(err)
	}
	if err := s.RacesReport(os.Stdout); err != nil {
		t.Fatal(err)
	}
}
