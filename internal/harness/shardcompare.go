package harness

import (
	"fmt"
	"io"
	"math"
	"sort"

	"lrcrace/internal/dsm"
	"lrcrace/internal/mem"
	"lrcrace/internal/telemetry"
)

// This file measures the tentpole of the sharded race check: how much
// barrier latency the distribution buys. The quantity compared is the
// dsm_barrier_wait_ns series — virtual time from a process's barrier
// arrival to its departure, one sample per process per epoch — extracted
// from the telemetry recorder's raw events so the percentiles are exact
// rather than read off histogram buckets. Under the serial check every
// epoch's bitmap comparison serializes at the master inside that wait;
// under Config.ShardedCheck it spreads across the shard owners and only
// the reduction tree remains on the critical path.

// ShardCompareRow is one workload × process-count measurement of the
// serial-versus-sharded barrier race check.
type ShardCompareRow struct {
	Workload string
	Procs    int
	// Entries is the check-list entry total the detector built over the
	// serial run — the comparison work being distributed. (The sharded run
	// builds the same list; TSP's lock schedule can drift between two
	// independent runs, so the serial figure is the one reported.)
	Entries int64
	// Nearest-rank percentiles of dsm_barrier_wait_ns, in virtual ns.
	SerialP50, SerialP99 int64
	ShardP50, ShardP99   int64
}

// SpeedupP50 is the serial/sharded ratio of median barrier waits.
func (r ShardCompareRow) SpeedupP50() float64 { return waitRatio(r.SerialP50, r.ShardP50) }

// SpeedupP99 is the serial/sharded ratio of tail barrier waits.
func (r ShardCompareRow) SpeedupP99() float64 { return waitRatio(r.SerialP99, r.ShardP99) }

func waitRatio(serial, sharded int64) float64 {
	if sharded == 0 {
		return 0
	}
	return float64(serial) / float64(sharded)
}

// barrierWaitNS extracts every barrier-departure wait (KBarrierDepart arg C)
// retained by the recorder — the raw samples behind dsm_barrier_wait_ns.
func barrierWaitNS(rec *telemetry.Recorder) []int64 {
	var out []int64
	for _, e := range rec.Events() {
		if e.Kind == telemetry.KBarrierDepart {
			out = append(out, e.C)
		}
	}
	return out
}

// pctNS is the nearest-rank q-th percentile (q in (0,1]) of samples.
func pctNS(samples []int64, q float64) int64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]int64(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	k := int(math.Ceil(q * float64(len(s))))
	if k < 1 {
		k = 1
	}
	return s[k-1]
}

// runShardSynthetic drives the MultiWriter protocol through an all-pairs
// false-sharing workload: every process writes its own word-disjoint slice
// of every page each epoch, so the check list carries pages × C(procs,2)
// entries per barrier while the bitmap comparisons find no word overlap —
// the check-bound regime where distribution should pay, without the
// race-report broadcast (kept rare in practice by §6.4 first-race
// filtering) drowning the signal. Returns the barrier wait samples and the
// detector's check-list entry total.
func runShardSynthetic(procs int, sharded bool) ([]int64, int64, error) {
	const (
		pageSize = 512
		pages    = 64
		epochs   = 6
		hotWords = 8 // words per page written by each process (disjoint slices)
	)
	if procs*hotWords > pageSize/8 {
		return nil, 0, fmt.Errorf("harness: %d procs × %d words exceeds the %d-word page", procs, hotWords, pageSize/8)
	}
	rec := telemetry.New(telemetry.Config{Procs: procs, Cap: -1})
	s, err := dsm.New(dsm.Config{
		NumProcs:     procs,
		SharedSize:   pages * pageSize,
		PageSize:     pageSize,
		Protocol:     dsm.MultiWriter,
		Detect:       true,
		ShardedCheck: sharded,
		Recorder:     rec,
	})
	if err != nil {
		return nil, 0, err
	}
	base, err := s.AllocWords("grid", pages*pageSize/8)
	if err != nil {
		return nil, 0, err
	}
	err = s.Run(func(p *dsm.Proc) {
		for e := 0; e < epochs; e++ {
			for pg := 0; pg < pages; pg++ {
				for w := 0; w < hotWords; w++ {
					word := pg*(pageSize/8) + p.ID()*hotWords + w
					p.Write(base+mem.Addr(word*8), uint64(word))
				}
			}
			p.Barrier()
		}
	})
	if err != nil {
		return nil, 0, err
	}
	return barrierWaitNS(rec), int64(s.DetectorStats().CheckEntries), nil
}

// runShardApp runs one benchmark application with detection on and the
// given check mode, returning its barrier wait samples and check-list total.
func (s *Suite) runShardApp(app string, procs int, sharded bool) ([]int64, int64, error) {
	scale := s.Scale * PaperScaleFactors[app]
	if scale == 0 {
		scale = s.Scale
	}
	res, err := Run(RunConfig{
		App:          app,
		Scale:        scale,
		Procs:        procs,
		Protocol:     s.Protocol,
		Detect:       true,
		ShardedCheck: sharded,
		RealMsgDelay: s.RealMsgDelay,
		Telemetry:    &telemetry.Config{Cap: -1},
	})
	if err != nil {
		return nil, 0, err
	}
	return barrierWaitNS(res.Telemetry), int64(res.Det.CheckEntries), nil
}

// ShardCompare measures the serial-versus-sharded barrier wait on the
// synthetic MultiWriter workload and on TSP, at each process count
// (nil → 4 and 8).
func (s *Suite) ShardCompare(procCounts []int) ([]ShardCompareRow, error) {
	if len(procCounts) == 0 {
		procCounts = []int{4, 8}
	}
	var rows []ShardCompareRow
	for _, pc := range procCounts {
		serialW, entries, err := runShardSynthetic(pc, false)
		if err != nil {
			return nil, fmt.Errorf("harness: synthetic serial at %d procs: %w", pc, err)
		}
		shardW, _, err := runShardSynthetic(pc, true)
		if err != nil {
			return nil, fmt.Errorf("harness: synthetic sharded at %d procs: %w", pc, err)
		}
		rows = append(rows, ShardCompareRow{
			Workload: "MultiWriter", Procs: pc, Entries: entries,
			SerialP50: pctNS(serialW, 0.50), SerialP99: pctNS(serialW, 0.99),
			ShardP50: pctNS(shardW, 0.50), ShardP99: pctNS(shardW, 0.99),
		})

		serialW, entries, err = s.runShardApp("TSP", pc, false)
		if err != nil {
			return nil, fmt.Errorf("harness: TSP serial at %d procs: %w", pc, err)
		}
		shardW, _, err = s.runShardApp("TSP", pc, true)
		if err != nil {
			return nil, fmt.Errorf("harness: TSP sharded at %d procs: %w", pc, err)
		}
		rows = append(rows, ShardCompareRow{
			Workload: "TSP", Procs: pc, Entries: entries,
			SerialP50: pctNS(serialW, 0.50), SerialP99: pctNS(serialW, 0.99),
			ShardP50: pctNS(shardW, 0.50), ShardP99: pctNS(shardW, 0.99),
		})
	}
	return rows, nil
}

// ShardCompareTable prints the serial-versus-sharded barrier wait
// comparison (EXPERIMENTS.md's sharded-check section).
func (s *Suite) ShardCompareTable(w io.Writer, procCounts []int) error {
	rows, err := s.ShardCompare(procCounts)
	if err != nil {
		return err
	}
	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	fmt.Fprintln(w, "Serial vs. sharded barrier race check (dsm_barrier_wait_ns, exact percentiles, virtual µs)")
	fmt.Fprintf(w, "%-12s %5s %9s %12s %12s %12s %12s %8s %8s\n",
		"Workload", "Procs", "Entries",
		"serial p50", "serial p99", "shard p50", "shard p99", "p50", "p99")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %5d %9d %12.0f %12.0f %12.0f %12.0f %7.2fx %7.2fx\n",
			r.Workload, r.Procs, r.Entries,
			us(r.SerialP50), us(r.SerialP99), us(r.ShardP50), us(r.ShardP99),
			r.SpeedupP50(), r.SpeedupP99())
	}
	return nil
}
