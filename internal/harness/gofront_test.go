package harness

import (
	"strings"
	"testing"

	"lrcrace/internal/dsm"
	"lrcrace/internal/simnet"
	"lrcrace/internal/telemetry"
)

func TestGoFrontRun(t *testing.T) {
	res, err := Run(RunConfig{
		App: "KV", Frontend: "go", Procs: 4, Detect: true,
		Racy: true, HotKeySkew: 0.7, Seed: 3,
		Telemetry: &telemetry.Config{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.GoFront == nil {
		t.Fatal("GoFront result missing")
	}
	if res.Sys != nil {
		t.Fatal("go-frontend run built a DSM system")
	}
	if len(res.Races) == 0 {
		t.Fatal("racy KV run found no races")
	}
	vars := res.RacyVariables()
	if len(vars) == 0 || !strings.HasPrefix(vars[0], "kv.val[") {
		t.Fatalf("RacyVariables = %v, want kv.val[...] names", vars)
	}

	snap := res.MetricsSnapshot()
	for _, series := range []string{
		"gofront_intervals_total", "gofront_sync_ops_total",
		"gofront_pairs_examined_total", "races_found_total",
	} {
		if snap.CounterTotal(series) == 0 {
			b, _ := snap.MarshalJSON()
			t.Fatalf("metrics missing %s:\n%s", series, b)
		}
	}
	// The scoped recorder saw the run's sync/check events too.
	kinds := map[telemetry.Kind]bool{}
	for _, e := range res.Telemetry.Events() {
		kinds[e.Kind] = true
	}
	for _, k := range []telemetry.Kind{telemetry.KGoSync, telemetry.KGoCheck, telemetry.KRaceFound} {
		if !kinds[k] {
			t.Fatalf("recorder missing %v events (have %v)", k, kinds)
		}
	}
}

func TestGoFrontCleanRun(t *testing.T) {
	res, err := Run(RunConfig{App: "Sessions", Frontend: "go", Procs: 3, Detect: true, HotKeySkew: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Races) != 0 {
		t.Fatalf("clean Sessions run raced: %v", res.RacyVariables())
	}
}

func TestGoFrontValidation(t *testing.T) {
	ok := RunConfig{App: "KV", Frontend: "go", Procs: 2, Detect: true}
	if err := ValidateRunConfig(ok); err != nil {
		t.Fatalf("valid go-frontend config rejected: %v", err)
	}
	bad := []RunConfig{
		{App: "KV", Frontend: "rust", Procs: 2},
		{App: "FFT", Frontend: "go", Procs: 2},
		{App: "KV", Frontend: "go", Procs: 2, HotKeySkew: 1.5},
		{App: "KV", Frontend: "go", Procs: 2, OpsPerClient: -1},
		{App: "KV", Frontend: "go", Procs: 2, Protocol: dsm.MultiWriter},
		{App: "KV", Frontend: "go", Procs: 2, Detect: true, ShardedCheck: true},
		{App: "KV", Frontend: "go", Procs: 2, BarrierTree: 2},
		{App: "KV", Frontend: "go", Procs: 2, Reliable: true},
		{App: "KV", Frontend: "go", Procs: 2, Faults: &simnet.FaultPlan{Drop: 0.1}},
		{App: "KV", Frontend: "go", Procs: 2, CrashMode: "single"},
		{App: "FFT", Procs: 2, Racy: true},
		{App: "FFT", Procs: 2, HotKeySkew: 0.5},
		{App: "FFT", Procs: 2, OpsPerClient: 10},
	}
	for i, cfg := range bad {
		if err := ValidateRunConfig(cfg); err == nil {
			t.Fatalf("case %d (%+v): invalid config accepted", i, cfg)
		}
	}
}
