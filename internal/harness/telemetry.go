package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"lrcrace/internal/msg"
	"lrcrace/internal/telemetry"
)

// FillMetrics publishes the run's raw counters into reg, so that one
// telemetry.Snapshot subsumes dsm.Stats (per-process, labeled by proc),
// simnet.Stats (per wire message type), the master's race.Stats, and the
// run's end-to-end times. Run calls this automatically when a telemetry
// recorder was configured; call it directly to export a run that recorded
// no events.
func (r *Result) FillMetrics(reg *telemetry.Registry) {
	if r.GoFront != nil {
		r.fillGoFrontMetrics(reg)
		return
	}
	for i, st := range r.Procs {
		p := telemetry.Label{Key: "proc", Value: strconv.Itoa(i)}
		for _, c := range []struct {
			name, help string
			v          int64
		}{
			{"dsm_shared_reads_total", "Instrumented shared reads.", st.SharedReads},
			{"dsm_shared_writes_total", "Instrumented shared writes.", st.SharedWrites},
			{"dsm_private_accesses_total", "Runtime-checked private accesses.", st.PrivateAccesses},
			{"dsm_read_faults_total", "Read page faults.", st.ReadFaults},
			{"dsm_write_faults_total", "Write page faults.", st.WriteFaults},
			{"dsm_intervals_total", "Interval records created.", st.IntervalsCreated},
			{"dsm_lock_acquires_total", "Distributed lock acquisitions.", st.LockAcquires},
			{"dsm_barriers_total", "Barrier episodes.", st.Barriers},
			{"dsm_diffs_flushed_total", "Multi-writer diffs flushed home.", st.DiffsFlushed},
			{"dsm_diff_words_total", "Words carried by flushed diffs.", st.DiffWords},
			{"dsm_bitmaps_created_total", "Access bitmaps created.", st.BitmapsCreated},
			{"dsm_bitmaps_sent_total", "Access bitmaps sent for comparison.", st.BitmapsSent},
			{"dsm_read_notice_bytes_total", "Wire bytes of read notices sent.", st.ReadNoticeBytes},
			{"dsm_sync_msg_bytes_total", "Wire bytes of record-carrying sync messages sent.", st.SyncMsgBytes},
			// Attributed per process: under the serial check all comparison
			// work lands at proc 0; under ShardedCheck it spreads across the
			// shard owners. (These were previously published only as global
			// detector totals, hiding the distribution.)
			{"race_check_entries_total", "Check-list entries this process compared.", st.CheckEntriesCompared},
			{"race_bitmaps_compared_total", "Bitmap pairs this process fetched and compared.", st.BitmapsCompared},
		} {
			reg.Counter(c.name, c.help, p).Add(c.v)
		}
	}

	for t := 0; t < msg.NumTypes; t++ {
		if r.Net.Messages[t] == 0 && r.Net.Bytes[t] == 0 &&
			r.Net.Dropped[t] == 0 && r.Net.Duplicated[t] == 0 {
			continue
		}
		l := telemetry.Label{Key: "type", Value: msg.Type(t).String()}
		reg.Counter("net_messages_total", "Wire messages sent, by type.", l).Add(r.Net.Messages[t])
		reg.Counter("net_bytes_total", "Wire bytes sent, by type.", l).Add(r.Net.Bytes[t])
		if r.Net.Dropped[t] != 0 {
			reg.Counter("net_dropped_total", "Messages discarded by the fault injector.", l).Add(r.Net.Dropped[t])
		}
		if r.Net.Duplicated[t] != 0 {
			reg.Counter("net_duplicated_total", "Messages duplicated by the fault injector.", l).Add(r.Net.Duplicated[t])
		}
	}
	reg.Counter("net_reordered_total", "Messages held back for reordering.").Add(r.Net.Reordered)
	reg.Counter("net_retransmits_total", "Reliable-sublayer data resends.").Add(r.Net.Retransmits)
	reg.Counter("net_retrans_bytes_total", "Wire bytes of reliable-sublayer resends.").Add(r.Net.RetransBytes)
	reg.Counter("net_deduped_total", "Receiver-side duplicate suppressions.").Add(r.Net.Deduped)
	reg.Counter("net_errors_total", "Transport-level errors (dead links, decode failures).").Add(r.Net.Errors)

	for _, c := range []struct {
		name, help string
		v          int64
	}{
		{"race_epochs_total", "Race-detection passes run at the master.", int64(r.Det.Epochs)},
		{"race_pair_comparisons_total", "Version-vector pair comparisons.", int64(r.Det.PairComparisons)},
		{"race_concurrent_pairs_total", "Interval pairs found concurrent.", int64(r.Det.ConcurrentPairs)},
		{"race_overlapping_pairs_total", "Concurrent pairs with page overlap.", int64(r.Det.OverlappingPairs)},
		{"race_check_entries_built_total", "Check-list entries built by the detector.", int64(r.Det.CheckEntries)},
		{"race_word_overlaps_total", "Racing words found before dedup.", int64(r.Det.WordOverlaps)},
		{"race_reports_suppressed_total", "Reports dropped by first-race filtering.", int64(r.Det.SuppressedReports)},
		{"races_found_total", "Dynamic race reports delivered.", int64(len(r.Races))},
	} {
		reg.Counter(c.name, c.help).Add(c.v)
	}

	reg.Gauge("run_virtual_ns", "End-to-end virtual runtime.").Set(float64(r.VirtualNS))
	reg.Gauge("run_wall_ns", "End-to-end wall-clock runtime.").Set(float64(r.WallNS))
	reg.Gauge("run_shared_mem_bytes", "Shared segment bytes allocated.").Set(float64(r.MemBytes))

	// Crash-tolerance costs, as end-of-run totals. Named run_* (not the
	// event-derived dsm_checkpoint_*/dsm_recovery_* counters) so filling a
	// live recorder's registry does not double-count its own series.
	if r.Checkpoint.Count > 0 || r.Recovery.Recoveries > 0 {
		reg.Gauge("run_checkpoints", "Barrier-epoch checkpoints serialized.").Set(float64(r.Checkpoint.Count))
		reg.Gauge("run_checkpoint_bytes", "Total serialized checkpoint bytes.").Set(float64(r.Checkpoint.Bytes))
		reg.Gauge("run_recoveries", "Coordinated rollback recoveries performed.").Set(float64(r.Recovery.Recoveries))
		reg.Gauge("run_recovery_virtual_ns", "Virtual time rolled back and re-executed.").Set(float64(r.Recovery.VirtualNS))
		reg.Gauge("run_recovery_wall_ns", "Wall time spent restoring from checkpoints.").Set(float64(r.Recovery.WallNS))
	}
}

// MetricsSnapshot freezes the run's metrics: the recorder's registry when
// one was attached (event-derived series plus the raw counters Run filled
// in), or a fresh registry holding just the raw counters otherwise.
func (r *Result) MetricsSnapshot() *telemetry.Snapshot {
	if r.Telemetry != nil {
		return r.Telemetry.Metrics().Snapshot()
	}
	reg := telemetry.NewRegistry()
	r.FillMetrics(reg)
	return reg.Snapshot()
}

// suiteMetrics is the machine-readable form of a Suite's cached runs.
type suiteMetrics struct {
	Scale    float64                     `json:"scale"`
	Procs    int                         `json:"procs"`
	Protocol string                      `json:"protocol"`
	Apps     map[string]*suiteAppMetrics `json:"apps"`
}

type suiteAppMetrics struct {
	Baseline *telemetry.Snapshot `json:"baseline"`
	Detect   *telemetry.Snapshot `json:"detect"`
	Slowdown float64             `json:"slowdown"`
	// Robustness is present when the suite ran with checkpointing enabled:
	// the serialized-checkpoint overhead and any rollback-recovery cost of
	// the detection run, next to the detection-slowdown numbers above.
	Robustness *suiteRobustness `json:"robustness,omitempty"`
}

// suiteRobustness is the crash-tolerance cost block of one suite app run.
type suiteRobustness struct {
	Checkpoints       int   `json:"checkpoints"`
	CheckpointBytes   int64 `json:"checkpoint_bytes"`
	Recoveries        int   `json:"recoveries"`
	RecoveryVirtualNS int64 `json:"recovery_virtual_ns"`
	RecoveryWallNS    int64 `json:"recovery_wall_ns"`
}

// WriteMetricsJSON runs (or reuses) the suite's baseline/detection pairs at
// the suite's process count and writes their metrics snapshots as one JSON
// document — the machine-readable companion to the text tables.
func (s *Suite) WriteMetricsJSON(w io.Writer) error {
	doc := suiteMetrics{
		Scale:    s.Scale,
		Procs:    s.Procs,
		Protocol: s.Protocol.String(),
		Apps:     make(map[string]*suiteAppMetrics),
	}
	for _, app := range AppNames {
		base, det, err := s.pair(app, s.Procs)
		if err != nil {
			return err
		}
		bs, ds := base.MetricsSnapshot(), det.MetricsSnapshot()
		if s.Canonical {
			bs, ds = bs.Canonical(), ds.Canonical()
		}
		am := &suiteAppMetrics{
			Baseline: bs,
			Detect:   ds,
			Slowdown: Slowdown(base, det),
		}
		if det.Checkpoint.Count > 0 || det.Recovery.Recoveries > 0 {
			am.Robustness = &suiteRobustness{
				Checkpoints:       det.Checkpoint.Count,
				CheckpointBytes:   det.Checkpoint.Bytes,
				Recoveries:        det.Recovery.Recoveries,
				RecoveryVirtualNS: det.Recovery.VirtualNS,
				RecoveryWallNS:    det.Recovery.WallNS,
			}
		}
		doc.Apps[app] = am
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&doc); err != nil {
		return fmt.Errorf("harness: encoding metrics JSON: %w", err)
	}
	return nil
}
