package harness

import (
	"fmt"
	"io"
	"reflect"

	"lrcrace/internal/dsm"
	"lrcrace/internal/mem"
	"lrcrace/internal/race"
	"lrcrace/internal/telemetry"
)

// This file measures the combining-tree barrier (dsm.Config.BarrierTree)
// against the flat all-to-master barrier. The quantity compared is the
// same dsm_barrier_wait_ns series the sharded-check comparison uses —
// virtual time from a process's barrier arrival to its departure, one
// sample per process per epoch, exact percentiles from the recorder's raw
// events. Under the flat barrier every arrival serializes at the master
// and the whole check list is built there inside the wait; under the tree
// arrivals reduce up ⌈log_k N⌉ hops and each interior node pre-builds the
// check-list slice for the interval pairs whose contributions meet at it,
// so the master only folds.
//
// Every comparison doubles as a correctness gate: the two topologies must
// report identical races and leave the detector in identical persistent
// state, or TreeCompare returns an error instead of a table. The flat
// barrier stays in the tree as the oracle keeping the topology honest.

// TreeCompareRow is one process-count measurement of the flat-versus-tree
// barrier on the synthetic workload.
type TreeCompareRow struct {
	Procs int
	Arity int
	// Entries is the check-list entry total the detector built over the
	// flat run — identical in the tree run (verified, not assumed).
	Entries int64
	// Nearest-rank percentiles of dsm_barrier_wait_ns, in virtual ns.
	FlatP50, FlatP99 int64
	TreeP50, TreeP99 int64
}

// SpeedupP50 is the flat/tree ratio of median barrier waits.
func (r TreeCompareRow) SpeedupP50() float64 { return waitRatio(r.FlatP50, r.TreeP50) }

// SpeedupP99 is the flat/tree ratio of tail barrier waits.
func (r TreeCompareRow) SpeedupP99() float64 { return waitRatio(r.FlatP99, r.TreeP99) }

// treeSyntheticOutcome carries one run's latency samples plus everything
// the byte-identity gate compares.
type treeSyntheticOutcome struct {
	waits   []int64
	entries int64
	races   []race.Report
	det     race.State
}

// runTreeSynthetic drives the MultiWriter protocol through a workload
// whose barrier wait is dominated by the check-list *build* — the work the
// combining tree actually distributes — rather than by payload bytes,
// which no topology can shrink (every process must receive every record
// either way). Each process runs cycles lock/unlock pairs per epoch on a
// private lock, splitting the epoch into 2·cycles concurrent intervals;
// pair-comparison work at the master grows with (intervals·procs)² while
// the record payload grows only linearly, so the serialized build is the
// dominant term at wide process counts. Every interval writes a private
// chunk of pages homed at the writer (pg ≡ p mod procs: diffs and faults
// are loopback, and no cross-process page sharing means a near-empty
// check list), plus one deliberate write-write overlap on a shared page
// so the race sets being diffed are non-empty.
func runTreeSynthetic(procs, arity int) (treeSyntheticOutcome, error) {
	const (
		pageSize = 256 // 32 words
		epochs   = 3
		cycles   = 4  // lock/unlock pairs per epoch -> 2·cycles intervals
		chunk    = 32 // private pages written per interval
	)
	var out treeSyntheticOutcome
	if procs < 2 || procs > 128 {
		return out, fmt.Errorf("harness: %d procs outside the synthetic's 2..128 range", procs)
	}
	// Page 0 is the shared race page; process p's private page j lives at
	// (1+j)·procs + p, so its home (pg mod procs) is p itself.
	perProc := 2 * cycles * chunk
	pages := (1 + perProc) * procs
	rec := telemetry.New(telemetry.Config{Procs: procs, Cap: -1})
	s, err := dsm.New(dsm.Config{
		NumProcs:    procs,
		SharedSize:  pages * pageSize,
		PageSize:    pageSize,
		Protocol:    dsm.MultiWriter,
		Detect:      true,
		BarrierTree: arity,
		Recorder:    rec,
	})
	if err != nil {
		return out, err
	}
	base, err := s.AllocWords("grid", pages*pageSize/8)
	if err != nil {
		return out, err
	}
	err = s.Run(func(p *dsm.Proc) {
		private := func(j int) mem.Addr {
			return base + mem.Addr((1+j)*procs+p.ID())*pageSize
		}
		for e := 0; e < epochs; e++ {
			slot := 0
			for c := 0; c < cycles; c++ {
				p.Lock(p.ID())
				for i := 0; i < chunk; i++ {
					p.Write(private(slot), uint64(slot))
					slot++
				}
				p.Unlock(p.ID())
				for i := 0; i < chunk; i++ {
					p.Write(private(slot), uint64(slot))
					slot++
				}
			}
			if e == 0 && p.ID() < 2 {
				// The deliberate race: procs 0 and 1 overlap on one word
				// of the shared page.
				p.Write(base+8, uint64(p.ID()))
			}
			p.Barrier()
		}
	})
	if err != nil {
		return out, err
	}
	out.waits = barrierWaitNS(rec)
	out.entries = int64(s.DetectorStats().CheckEntries)
	out.races = s.Races()
	out.det = s.DetectorState()
	return out, nil
}

// TreeCompare measures the flat-versus-tree barrier wait on the synthetic
// workload at each process count (nil → 8, 16, 32, 64; arity 0 → 2),
// verifying at every point that the tree run reproduced the flat run's
// races and detector state byte-for-byte.
func (s *Suite) TreeCompare(procCounts []int, arity int) ([]TreeCompareRow, error) {
	if len(procCounts) == 0 {
		procCounts = []int{8, 16, 32, 64}
	}
	if arity == 0 {
		arity = 2
	}
	var rows []TreeCompareRow
	for _, pc := range procCounts {
		flat, err := runTreeSynthetic(pc, 0)
		if err != nil {
			return nil, fmt.Errorf("harness: synthetic flat barrier at %d procs: %w", pc, err)
		}
		tree, err := runTreeSynthetic(pc, arity)
		if err != nil {
			return nil, fmt.Errorf("harness: synthetic tree barrier at %d procs: %w", pc, err)
		}
		if !reflect.DeepEqual(flat.races, tree.races) {
			return nil, fmt.Errorf("harness: tree barrier at %d procs arity %d diverged from the flat oracle's races:\nflat: %v\ntree: %v",
				pc, arity, flat.races, tree.races)
		}
		if !reflect.DeepEqual(flat.det, tree.det) {
			return nil, fmt.Errorf("harness: tree barrier at %d procs arity %d diverged from the flat oracle's detector state", pc, arity)
		}
		if len(flat.races) == 0 {
			return nil, fmt.Errorf("harness: synthetic workload at %d procs found no races; the identity gate proves nothing", pc)
		}
		rows = append(rows, TreeCompareRow{
			Procs: pc, Arity: arity, Entries: flat.entries,
			FlatP50: pctNS(flat.waits, 0.50), FlatP99: pctNS(flat.waits, 0.99),
			TreeP50: pctNS(tree.waits, 0.50), TreeP99: pctNS(tree.waits, 0.99),
		})
	}
	return rows, nil
}

// TreeCompareTable prints the flat-versus-tree barrier wait comparison
// (EXPERIMENTS.md's combining-tree section and docs/SCALING.md's table).
func (s *Suite) TreeCompareTable(w io.Writer, procCounts []int, arity int) error {
	rows, err := s.TreeCompare(procCounts, arity)
	if err != nil {
		return err
	}
	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	fmt.Fprintln(w, "Flat vs. combining-tree barrier (dsm_barrier_wait_ns, exact percentiles, virtual µs)")
	fmt.Fprintf(w, "%5s %5s %9s %12s %12s %12s %12s %8s %8s\n",
		"Procs", "Arity", "Entries",
		"flat p50", "flat p99", "tree p50", "tree p99", "p50", "p99")
	for _, r := range rows {
		fmt.Fprintf(w, "%5d %5d %9d %12.0f %12.0f %12.0f %12.0f %7.2fx %7.2fx\n",
			r.Procs, r.Arity, r.Entries,
			us(r.FlatP50), us(r.FlatP99), us(r.TreeP50), us(r.TreeP99),
			r.SpeedupP50(), r.SpeedupP99())
	}
	return nil
}
