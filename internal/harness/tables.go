package harness

import (
	"fmt"
	"io"
	"sync"
	"time"

	"lrcrace/internal/dsm"
	"lrcrace/internal/instr"
)

// AppNames lists the four benchmark applications in the paper's table order.
var AppNames = []string{"FFT", "SOR", "TSP", "Water"}

// PaperTable1 holds the paper's Table 1 reference values.
var PaperTable1 = map[string]struct {
	Input     string
	Sync      string
	MemKB     int
	Intervals float64
	Slowdown  float64
}{
	"FFT":   {"64 x 64 x 16", "barrier", 3088, 2, 2.08},
	"SOR":   {"512x512", "barrier", 8208, 2, 1.83},
	"TSP":   {"19 cities", "lock", 792, 177, 2.51},
	"Water": {"216 mols, 5 iters", "lock, barrier", 152, 46, 2.31},
}

// PaperTable3 holds the paper's Table 3 reference values.
var PaperTable3 = map[string]struct {
	IntervalsUsed float64
	BitmapsUsed   float64
	MsgOverhead   float64
	SharedPerSec  float64
	PrivatePerSec float64
}{
	"FFT":   {15, 1, 0.4, 311079, 924226},
	"SOR":   {0, 0, 1.6, 483310, 251200},
	"TSP":   {93, 13, 1.3, 737159, 2195510},
	"Water": {13, 11, 48.3, 145095, 982965},
}

// PaperFigure3 holds overhead-breakdown shape references read off the
// paper's Figure 3 (approximate; the exact totals equal slowdown−1 from
// Table 1, and the paper states instrumentation ≈68% of total overhead,
// procedure call ≈6.7%, CVM modifications ≈22% on average).
var PaperFigure3 = map[string]Overheads{
	"FFT":   {CVMMods: 24, ProcCall: 7, AccessCheck: 66, Intervals: 4, Bitmaps: 7},
	"SOR":   {CVMMods: 18, ProcCall: 6, AccessCheck: 52, Intervals: 3, Bitmaps: 4},
	"TSP":   {CVMMods: 30, ProcCall: 12, AccessCheck: 95, Intervals: 6, Bitmaps: 8},
	"Water": {CVMMods: 29, ProcCall: 9, AccessCheck: 70, Intervals: 14, Bitmaps: 9},
}

// PaperScaleFactors map suite scale 1.0 to (near-)paper input sizes per
// application: FFT's 3-D 64×64×16 grid, SOR 512×512, Water 216 molecules ×
// 5 steps. TSP runs 12 cities rather than the paper's 19 — branch-and-bound
// work grows factorially and 19 cities is days of (simulated) search —
// which preserves every sharing pattern at reduced tree depth.
var PaperScaleFactors = map[string]float64{
	"FFT":   1,
	"SOR":   28.4,
	"TSP":   2,
	"Water": 3.375,
}

// Suite runs and caches baseline/detection pairs for table generation.
type Suite struct {
	Scale    float64
	Procs    int
	Protocol dsm.ProtocolKind
	// RealMsgDelay overrides the per-app default when nonzero.
	RealMsgDelay time.Duration
	// NoCheckpoint runs every pair with the (default-on) barrier-epoch
	// checkpointing disabled, removing the recovery-state overhead from the
	// metrics document next to the detection-slowdown tables.
	NoCheckpoint bool
	// Canonical strips wall-clock-dependent series from the metrics
	// document (telemetry.Snapshot.Canonical), so deterministic workloads
	// produce byte-identical JSON across runs.
	Canonical bool

	mu       sync.Mutex
	inflight map[string]chan struct{} // pairs being filled right now
	cache    map[string][2]*Result    // key: app|procs → {base, det}
}

// NewSuite builds a suite; procs 0 → 8 (the paper's measurement size),
// scale 0 → 1.
func NewSuite(scale float64, procs int) *Suite {
	if scale == 0 {
		scale = 1
	}
	if procs == 0 {
		procs = 8
	}
	return &Suite{Scale: scale, Procs: procs, cache: make(map[string][2]*Result)}
}

// pair returns the cached baseline/detection pair for app at procs,
// running it on a miss. Concurrent callers are safe: a second request for
// a pair already being filled waits for the first rather than running the
// workload twice, so Prefill and the table writers can overlap.
func (s *Suite) pair(app string, procs int) (*Result, *Result, error) {
	key := fmt.Sprintf("%s|%d", app, procs)
	var ch chan struct{}
	for {
		s.mu.Lock()
		if c, ok := s.cache[key]; ok {
			s.mu.Unlock()
			return c[0], c[1], nil
		}
		var busy bool
		ch, busy = s.inflight[key]
		if !busy {
			if s.inflight == nil {
				s.inflight = make(map[string]chan struct{})
			}
			if s.cache == nil {
				s.cache = make(map[string][2]*Result)
			}
			ch = make(chan struct{})
			s.inflight[key] = ch
			s.mu.Unlock()
			break // this caller owns the fill
		}
		s.mu.Unlock()
		<-ch // another caller is filling; wait and re-check
	}
	scale := s.Scale * PaperScaleFactors[app]
	if scale == 0 {
		scale = s.Scale
	}
	base, det, err := Pair(RunConfig{
		App:          app,
		Scale:        scale,
		Procs:        procs,
		Protocol:     s.Protocol,
		RealMsgDelay: s.RealMsgDelay,
		NoCheckpoint: s.NoCheckpoint,
	})
	s.mu.Lock()
	if err == nil {
		s.cache[key] = [2]*Result{base, det}
	}
	delete(s.inflight, key)
	s.mu.Unlock()
	close(ch) // wake waiters; on error they retry the fill themselves
	if err != nil {
		return nil, nil, fmt.Errorf("harness: %s at %d procs: %w", app, procs, err)
	}
	return base, det, nil
}

// Prefill runs every application's pair at the suite's process count, at
// most workers at a time (0 → one per application). A failed pair does not
// stop the others; the first error is returned.
func (s *Suite) Prefill(workers int) error {
	if workers <= 0 {
		workers = len(AppNames)
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for _, app := range AppNames {
		wg.Add(1)
		go func(app string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if _, _, err := s.pair(app, s.Procs); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(app)
	}
	wg.Wait()
	return firstErr
}

// Table1 regenerates the paper's Table 1: application characteristics.
func (s *Suite) Table1(w io.Writer) error {
	fmt.Fprintf(w, "Table 1. Application Characteristics (%d procs, scale %.2g; paper values in parentheses)\n", s.Procs, s.Scale)
	fmt.Fprintf(w, "%-7s %-22s %-15s %14s %18s %18s\n",
		"", "Input Set", "Synchronization", "Memory (KB)", "Intervals/Barrier", "Slowdown")
	for _, app := range AppNames {
		base, det, err := s.pair(app, s.Procs)
		if err != nil {
			return err
		}
		ref := PaperTable1[app]
		fmt.Fprintf(w, "%-7s %-22s %-15s %8d (%4d) %10.1f (%4.0f) %12.2f (%.2f)\n",
			app, det.App.InputDesc(), det.App.SyncKinds(),
			det.MemBytes/1024, ref.MemKB,
			det.IntervalsPerBarrier(), ref.Intervals,
			Slowdown(base, det), ref.Slowdown)
	}
	return nil
}

// Table2 regenerates the paper's Table 2: static instrumentation statistics
// from the ATOM-model classifier over the synthesized application binaries.
func Table2(w io.Writer) {
	fmt.Fprintln(w, "Table 2. Instrumentation Statistics (load and store instructions)")
	fmt.Fprintf(w, "%-7s %9s %9s %9s %9s %9s %12s\n",
		"", "Stack", "Static", "Library", "CVM", "Inst.", "Eliminated")
	for _, app := range AppNames {
		prof := instr.PaperProfiles[app]
		st := instr.Classify(instr.Synthesize(prof))
		fmt.Fprintf(w, "%-7s %9d %9d %9d %9d %9d %11.2f%%\n",
			app, st.Stack, st.Static, st.Library, st.CVM, st.Instrumented, st.PercentEliminated())
	}
}

// Table3 regenerates the paper's Table 3: dynamic metrics.
func (s *Suite) Table3(w io.Writer) error {
	fmt.Fprintf(w, "Table 3. Dynamic Metrics (%d procs; paper values in parentheses)\n", s.Procs)
	fmt.Fprintf(w, "%-7s %18s %18s %16s %22s %22s\n",
		"", "Intervals Used", "Bitmaps Used", "Msg Ohead", "Shared acc/sec", "Private acc/sec")
	for _, app := range AppNames {
		_, det, err := s.pair(app, s.Procs)
		if err != nil {
			return err
		}
		ref := PaperTable3[app]
		sh, pr := det.AccessRates()
		fmt.Fprintf(w, "%-7s %9.0f%% (%3.0f%%) %9.0f%% (%3.0f%%) %8.1f%% (%4.1f%%) %12.0f (%7.0f) %12.0f (%7.0f)\n",
			app,
			det.IntervalsUsedPct(), ref.IntervalsUsed,
			det.BitmapsUsedPct(), ref.BitmapsUsed,
			det.MsgOverheadPct(), ref.MsgOverhead,
			sh, ref.SharedPerSec,
			pr, ref.PrivatePerSec)
	}
	return nil
}

// Figure3 regenerates the paper's Figure 3: overhead breakdown relative to
// the uninstrumented runtime.
func (s *Suite) Figure3(w io.Writer) error {
	fmt.Fprintf(w, "Figure 3. Overhead Breakdown (%% of uninstrumented runtime, %d procs; paper approx in parentheses)\n", s.Procs)
	fmt.Fprintf(w, "%-7s %16s %16s %16s %16s %16s %10s\n",
		"", "CVM Mods", "Proc Call", "Access Check", "Intervals", "Bitmaps", "Total")
	for _, app := range AppNames {
		base, det, err := s.pair(app, s.Procs)
		if err != nil {
			return err
		}
		o := Breakdown(base, det)
		ref := PaperFigure3[app]
		fmt.Fprintf(w, "%-7s %7.1f%% (%3.0f%%) %7.1f%% (%3.0f%%) %7.1f%% (%3.0f%%) %7.1f%% (%3.0f%%) %7.1f%% (%3.0f%%) %8.1f%%\n",
			app,
			o.CVMMods, ref.CVMMods,
			o.ProcCall, ref.ProcCall,
			o.AccessCheck, ref.AccessCheck,
			o.Intervals, ref.Intervals,
			o.Bitmaps, ref.Bitmaps,
			o.Total())
	}
	return nil
}

// Figure4 regenerates the paper's Figure 4: slowdown versus processors.
// The paper's qualitative result — slowdown decreases as processors are
// added, because instrumentation parallelizes while master-side comparison
// stays constant — must hold.
func (s *Suite) Figure4(w io.Writer, procCounts []int) error {
	if len(procCounts) == 0 {
		procCounts = []int{2, 4, 8}
	}
	fmt.Fprintf(w, "Figure 4. Slowdown Factor versus Number of Processors (scale %.2g)\n", s.Scale)
	fmt.Fprintf(w, "%-7s", "")
	for _, pc := range procCounts {
		fmt.Fprintf(w, " %8d", pc)
	}
	fmt.Fprintf(w, "   (paper @8: see Table 1)\n")
	for _, app := range AppNames {
		fmt.Fprintf(w, "%-7s", app)
		for _, pc := range procCounts {
			base, det, err := s.pair(app, pc)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %8.2f", Slowdown(base, det))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Races reports the races each application shows under detection, with
// symbol names — the paper's §5 finding: TSP and Water race, FFT and SOR
// do not.
func (s *Suite) RacesReport(w io.Writer) error {
	fmt.Fprintf(w, "Detected data races (%d procs)\n", s.Procs)
	for _, app := range AppNames {
		_, det, err := s.pair(app, s.Procs)
		if err != nil {
			return err
		}
		vars := det.RacyVariables()
		if len(vars) == 0 {
			fmt.Fprintf(w, "%-7s none\n", app)
		} else {
			fmt.Fprintf(w, "%-7s %d dynamic reports on: %v\n", app, len(det.Races), vars)
		}
	}
	return nil
}
