package harness

import (
	"fmt"
	"strings"

	"lrcrace/internal/apps"
	"lrcrace/internal/dsm"
	"lrcrace/internal/gofront"
)

// ValidateRunConfig checks a configuration without running it: every
// rejection Run (or the dsm.Config it builds) would raise mid-setup is
// raised here, up front. It is the admission-time gate of the detection
// service — a request that fails ValidateRunConfig can never run, so the
// service refuses it with a typed 4xx instead of burning a pool slot on a
// doomed System — and Run itself calls it first, so the two can never
// disagree about what is runnable.
func ValidateRunConfig(cfg RunConfig) error {
	if cfg.App == "" {
		return fmt.Errorf("harness: no application named")
	}
	if cfg.Procs < 1 {
		return fmt.Errorf("harness: Procs = %d (want >= 1)", cfg.Procs)
	}
	if cfg.Scale < 0 {
		return fmt.Errorf("harness: negative Scale %g", cfg.Scale)
	}
	if !KnownFrontend(cfg.Frontend) {
		return fmt.Errorf("harness: unknown frontend %q (have %s)", cfg.Frontend, strings.Join(Frontends, ", "))
	}
	if IsGoFrontend(cfg.Frontend) {
		return validateGoFront(cfg)
	}
	if cfg.HotKeySkew != 0 || cfg.Racy || cfg.OpsPerClient != 0 {
		return fmt.Errorf("harness: HotKeySkew, Racy, and OpsPerClient parameterize go-frontend workloads; set Frontend to \"go\"")
	}
	if cfg.ShardedCheck && !cfg.Detect {
		return fmt.Errorf("harness: ShardedCheck distributes the race check and so requires Detect")
	}
	if cfg.BarrierTree == 1 || cfg.BarrierTree < 0 {
		return fmt.Errorf("harness: BarrierTree = %d: the combining tree needs arity >= 2 (0 = flat barrier)", cfg.BarrierTree)
	}
	if cfg.Faults != nil && !cfg.Reliable &&
		(cfg.Faults.Drop > 0 || cfg.Faults.Dup > 0 || cfg.Faults.Reorder > 0) {
		return fmt.Errorf("harness: lossy fault plan requires the Reliable sublayer")
	}
	if IsChaosApp(cfg.App) {
		if chaosMode(cfg.CrashMode) != "none" && cfg.NoCheckpoint {
			return fmt.Errorf("harness: CrashMode %q requires checkpointing: with NoCheckpoint there is nothing to roll back to", cfg.CrashMode)
		}
		epochs := int32(cfg.Epochs)
		if epochs == 0 {
			epochs = chaosDefaultEpochs
		}
		// chaosPlans is the single source of truth for crash/corruption
		// mode rules; a dry derivation validates without side effects.
		if _, _, err := chaosPlans(cfg, cfg.Procs, epochs); err != nil {
			return err
		}
		return nil
	}
	if chaosMode(cfg.CrashMode) != "none" || chaosMode(cfg.CorruptMode) != "none" {
		return fmt.Errorf("harness: %s is a whole-program benchmark and cannot recover; crash/corruption modes need a chaos app (%s)", cfg.App, chaosAppNames())
	}
	for _, n := range apps.Names() {
		if n == cfg.App {
			return nil
		}
	}
	return fmt.Errorf("harness: unknown application %q (have %s and chaos apps %s)",
		cfg.App, strings.Join(apps.Names(), ", "), chaosAppNames())
}

// validateGoFront gates the go-frontend configurations: the app must be a
// registered gofront workload, the workload knobs must be in range, and
// every DSM-only mechanism must be off — the gofront engine has no pages,
// wire, barrier tree, or checkpoint store to configure.
func validateGoFront(cfg RunConfig) error {
	if !gofront.IsWorkload(cfg.App) {
		return fmt.Errorf("harness: unknown go-frontend workload %q (have %s)",
			cfg.App, strings.Join(gofront.Workloads(), ", "))
	}
	if cfg.HotKeySkew < 0 || cfg.HotKeySkew >= 1 {
		return fmt.Errorf("harness: HotKeySkew = %g (want [0,1))", cfg.HotKeySkew)
	}
	if cfg.OpsPerClient < 0 {
		return fmt.Errorf("harness: negative OpsPerClient %d", cfg.OpsPerClient)
	}
	switch {
	case cfg.Protocol != dsm.SingleWriter:
		return fmt.Errorf("harness: the go frontend has no coherence protocol; leave Protocol at its default")
	case cfg.ShardedCheck:
		return fmt.Errorf("harness: ShardedCheck is a DSM barrier mechanism; the go frontend checks at sync points")
	case cfg.BarrierTree != 0:
		return fmt.Errorf("harness: BarrierTree is a DSM barrier mechanism; the go frontend has no barriers")
	case cfg.FirstOnly, cfg.PageBitmapOverlap, cfg.WritesFromDiffs:
		return fmt.Errorf("harness: FirstOnly/PageBitmapOverlap/WritesFromDiffs tune the DSM detector, not the go frontend")
	case cfg.Faults != nil, cfg.Reliable:
		return fmt.Errorf("harness: the go frontend has no wire to fault or retransmit")
	case chaosMode(cfg.CrashMode) != "none", chaosMode(cfg.CorruptMode) != "none":
		return fmt.Errorf("harness: crash/corruption modes need a DSM chaos app, not a go-frontend workload")
	}
	return nil
}
