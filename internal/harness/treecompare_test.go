package harness

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// TestTreeSyntheticIdentity is the measurement path's own honesty check:
// the tree run must reproduce the flat run's races and detector state
// byte-for-byte, over an identical check list, with the deliberate race
// present so the diff proves something.
func TestTreeSyntheticIdentity(t *testing.T) {
	flat, err := runTreeSynthetic(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := runTreeSynthetic(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if flat.entries == 0 || flat.entries != tree.entries {
		t.Fatalf("check-list entries: flat %d, tree %d; want equal and nonzero", flat.entries, tree.entries)
	}
	if len(flat.races) == 0 {
		t.Fatal("synthetic workload found no races; the identity gate proves nothing")
	}
	if !reflect.DeepEqual(flat.races, tree.races) {
		t.Errorf("races differ:\nflat: %v\ntree: %v", flat.races, tree.races)
	}
	if !reflect.DeepEqual(flat.det, tree.det) {
		t.Errorf("detector state differs:\nflat: %+v\ntree: %+v", flat.det, tree.det)
	}
	if len(flat.waits) == 0 || len(flat.waits) != len(tree.waits) {
		t.Fatalf("barrier wait samples: flat %d, tree %d", len(flat.waits), len(tree.waits))
	}
}

// TestTreeCompareSmoke runs the CI smoke cell — N=16, arity 2 — through
// the full TreeCompare path, which includes the byte-identity gate, and
// checks the table renders.
func TestTreeCompareSmoke(t *testing.T) {
	s := NewSuite(0.1, 4)
	rows, err := s.TreeCompare([]int{16}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Procs != 16 || rows[0].Entries == 0 {
		t.Fatalf("unexpected rows: %+v", rows)
	}
	if rows[0].TreeP50 == 0 || rows[0].FlatP50 == 0 {
		t.Fatalf("zero-valued percentiles: %+v", rows[0])
	}

	var buf bytes.Buffer
	if err := s.TreeCompareTable(&buf, []int{16}, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "combining-tree barrier") || !strings.Contains(out, "16") {
		t.Errorf("table output missing expected content:\n%s", out)
	}
}

// TestRunConfigBarrierTree: the harness-level gate mirrors the DSM's.
func TestRunConfigBarrierTree(t *testing.T) {
	bad := RunConfig{App: "TSP", Procs: 2, BarrierTree: 1}
	if err := ValidateRunConfig(bad); err == nil {
		t.Error("BarrierTree=1 accepted")
	}
	bad.BarrierTree = -3
	if err := ValidateRunConfig(bad); err == nil {
		t.Error("BarrierTree=-3 accepted")
	}
	good := RunConfig{App: "TSP", Procs: 2, BarrierTree: 2}
	if err := ValidateRunConfig(good); err != nil {
		t.Errorf("BarrierTree=2 rejected: %v", err)
	}
}
