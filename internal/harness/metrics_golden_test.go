package harness

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"lrcrace/internal/dsm"
	"lrcrace/internal/race"
	"lrcrace/internal/simnet"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// syntheticResult builds a fully deterministic Result for app: every
// counter is a fixed function of the app name's bytes, so the rendered
// metrics depend on nothing but this test file.
func syntheticResult(app string, procs int, detect bool) *Result {
	seed := int64(0)
	for _, b := range app {
		seed += int64(b)
	}
	d := int64(1)
	if detect {
		d = 2
	}
	r := &Result{
		VirtualNS: seed * d * 1_000_000,
		WallNS:    987654321, // wall-dependent: must vanish under Canonical
		MemBytes:  int(seed) * 1024,
		Procs:     make([]dsm.Stats, procs),
	}
	for i := range r.Procs {
		r.Procs[i] = dsm.Stats{
			SharedReads:  seed * int64(i+1),
			SharedWrites: seed * int64(i+2),
			ReadFaults:   seed + int64(i),
			Barriers:     10,
		}
	}
	r.Net = simnet.Stats{}
	r.Net.Messages[0] = seed * 3
	r.Net.Bytes[0] = seed * 300
	if detect {
		r.Det = race.Stats{Epochs: 10, PairComparisons: int(seed), ConcurrentPairs: int(seed / 2)}
		r.Races = make([]race.Report, seed%5)
	}
	return r
}

// fillSyntheticSuite loads a suite's cache with synthetic pairs so
// WriteMetricsJSON renders without running any workload.
func fillSyntheticSuite(s *Suite) {
	for _, app := range AppNames {
		key := fmt.Sprintf("%s|%d", app, s.Procs)
		s.cache[key] = [2]*Result{
			syntheticResult(app, s.Procs, false),
			syntheticResult(app, s.Procs, true),
		}
	}
}

// TestWriteMetricsJSONGolden pins the exact bytes of the canonical metrics
// document: the format consumed by sweep aggregation and CI artifact diffs
// must not drift silently. Regenerate with -update-golden after an
// intentional format change.
func TestWriteMetricsJSONGolden(t *testing.T) {
	s := NewSuite(0.5, 4)
	s.Canonical = true
	fillSyntheticSuite(s)

	var buf bytes.Buffer
	if err := s.WriteMetricsJSON(&buf); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "suite_metrics.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("metrics JSON drifted from golden file (len %d vs %d); run with -update-golden if intentional",
			buf.Len(), len(want))
	}
	if bytes.Contains(buf.Bytes(), []byte("run_wall_ns")) {
		t.Error("canonical document still contains wall-dependent series run_wall_ns")
	}
}

// TestWriteMetricsJSONDeterministic renders the same suite concurrently
// from many goroutines and sequentially twice: every rendering must be
// byte-identical. Map iteration order, concurrent cache fills, and
// snapshot copying must not leak into the bytes.
func TestWriteMetricsJSONDeterministic(t *testing.T) {
	s := NewSuite(0.5, 4)
	s.Canonical = true
	fillSyntheticSuite(s)

	var ref bytes.Buffer
	if err := s.WriteMetricsJSON(&ref); err != nil {
		t.Fatal(err)
	}

	const writers = 8
	outs := make([]bytes.Buffer, writers)
	errs := make([]error, writers)
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = s.WriteMetricsJSON(&outs[i])
		}(i)
	}
	wg.Wait()
	for i := 0; i < writers; i++ {
		if errs[i] != nil {
			t.Fatalf("writer %d: %v", i, errs[i])
		}
		if !bytes.Equal(outs[i].Bytes(), ref.Bytes()) {
			t.Errorf("writer %d produced different bytes (%d vs %d)", i, outs[i].Len(), ref.Len())
		}
	}
}

// TestSuitePairConcurrentFill pins the inflight-dedup contract: concurrent
// requests for the same uncached pair run the workload once and all get
// the same cached Results.
func TestSuitePairConcurrentFill(t *testing.T) {
	s := NewSuite(0.02, 2) // tiny scale: one real fill, quickly
	const callers = 4
	type got struct {
		base, det *Result
		err       error
	}
	outs := make([]got, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, d, err := s.pair("SOR", 2)
			outs[i] = got{b, d, err}
		}(i)
	}
	wg.Wait()
	for i, o := range outs {
		if o.err != nil {
			t.Fatalf("caller %d: %v", i, o.err)
		}
		if o.base != outs[0].base || o.det != outs[0].det {
			t.Errorf("caller %d got a different Result pointer: the pair ran more than once", i)
		}
	}
}
