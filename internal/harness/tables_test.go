package harness

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// tinySuite runs the full four-app suite at a deliberately small scale so
// rendering tests exercise the real pipeline without the smoke test's cost.
// The suite caches baseline/detect pairs, so the first test to touch an app
// pays for it once.
var tinySuite = NewSuite(0.02, 2)

func renderToString(t *testing.T, name string, f func() error, b *bytes.Buffer) string {
	t.Helper()
	if err := f(); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return b.String()
}

func assertAppRows(t *testing.T, name, out string) {
	t.Helper()
	for _, app := range AppNames {
		if !strings.Contains(out, app) {
			t.Errorf("%s output missing %s row:\n%s", name, app, out)
		}
	}
}

func TestTable1Rendering(t *testing.T) {
	var b bytes.Buffer
	out := renderToString(t, "Table1", func() error { return tinySuite.Table1(&b) }, &b)
	if !strings.Contains(out, "Table 1. Application Characteristics") {
		t.Fatalf("missing header:\n%s", out)
	}
	for _, col := range []string{"Input Set", "Synchronization", "Memory (KB)", "Intervals/Barrier", "Slowdown"} {
		if !strings.Contains(out, col) {
			t.Errorf("Table1 missing column %q", col)
		}
	}
	assertAppRows(t, "Table1", out)
}

func TestTable2Rendering(t *testing.T) {
	var b bytes.Buffer
	Table2(&b)
	out := b.String()
	if !strings.Contains(out, "Table 2. Instrumentation Statistics") {
		t.Fatalf("missing header:\n%s", out)
	}
	assertAppRows(t, "Table2", out)
	if !strings.Contains(out, "%") {
		t.Error("Table2 missing eliminated-percentage column")
	}
}

func TestTable3Rendering(t *testing.T) {
	var b bytes.Buffer
	out := renderToString(t, "Table3", func() error { return tinySuite.Table3(&b) }, &b)
	if !strings.Contains(out, "Table 3. Dynamic Metrics") {
		t.Fatalf("missing header:\n%s", out)
	}
	for _, col := range []string{"Intervals Used", "Bitmaps Used", "Msg Ohead", "Shared acc/sec", "Private acc/sec"} {
		if !strings.Contains(out, col) {
			t.Errorf("Table3 missing column %q", col)
		}
	}
	assertAppRows(t, "Table3", out)
}

func TestFigure3Rendering(t *testing.T) {
	var b bytes.Buffer
	out := renderToString(t, "Figure3", func() error { return tinySuite.Figure3(&b) }, &b)
	if !strings.Contains(out, "Figure 3. Overhead Breakdown") {
		t.Fatalf("missing header:\n%s", out)
	}
	for _, col := range []string{"CVM Mods", "Proc Call", "Access Check", "Intervals", "Bitmaps", "Total"} {
		if !strings.Contains(out, col) {
			t.Errorf("Figure3 missing column %q", col)
		}
	}
	assertAppRows(t, "Figure3", out)
}

func TestFigure4Rendering(t *testing.T) {
	var b bytes.Buffer
	out := renderToString(t, "Figure4",
		func() error { return tinySuite.Figure4(&b, []int{2}) }, &b)
	if !strings.Contains(out, "Figure 4. Slowdown Factor versus Number of Processors") {
		t.Fatalf("missing header:\n%s", out)
	}
	assertAppRows(t, "Figure4", out)
}

func TestRacesReportRendering(t *testing.T) {
	var b bytes.Buffer
	out := renderToString(t, "RacesReport",
		func() error { return tinySuite.RacesReport(&b) }, &b)
	if !strings.Contains(out, "Detected data races") {
		t.Fatalf("missing header:\n%s", out)
	}
	assertAppRows(t, "RacesReport", out)
	// The paper's §5 finding at any scale: FFT and SOR are race-free.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "FFT") || strings.HasPrefix(line, "SOR") {
			if !strings.Contains(line, "none") {
				t.Errorf("expected no races: %q", line)
			}
		}
	}
}

func TestWriteMetricsJSON(t *testing.T) {
	var b bytes.Buffer
	if err := tinySuite.WriteMetricsJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Scale    float64 `json:"scale"`
		Procs    int     `json:"procs"`
		Protocol string  `json:"protocol"`
		Apps     map[string]struct {
			Baseline json.RawMessage `json:"baseline"`
			Detect   struct {
				Counters map[string]int64 `json:"counters"`
			} `json:"detect"`
			Slowdown float64 `json:"slowdown"`
		} `json:"apps"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("metrics JSON does not parse: %v\n%s", err, b.String())
	}
	if doc.Scale != tinySuite.Scale || doc.Procs != tinySuite.Procs {
		t.Fatalf("doc header = %+v", doc)
	}
	for _, app := range AppNames {
		a, ok := doc.Apps[app]
		if !ok {
			t.Fatalf("metrics JSON missing app %s", app)
		}
		if a.Slowdown <= 0 {
			t.Errorf("%s slowdown = %v", app, a.Slowdown)
		}
		var barriers int64
		for k, v := range a.Detect.Counters {
			if strings.HasPrefix(k, "dsm_barriers_total") {
				barriers += v
			}
		}
		if barriers == 0 {
			t.Errorf("%s detect snapshot has no barrier counters", app)
		}
	}
}
