package harness

import (
	"fmt"
	"io"
	"testing"

	"lrcrace/internal/telemetry"
)

// TestCheckpointSteadyState measures the per-epoch stored cost of the
// always-on chunked checkpoints on the two array kernels, split into the
// first epoch (which pays the full closure) and the steady state (epochs
// ≥ 2, which pay only for pages whose bytes changed). The ceilings pin
// the measured steady-state ratios with headroom; the logged table is the
// source for the checkpoint section of EXPERIMENTS.md.
func TestCheckpointSteadyState(t *testing.T) {
	cases := []struct {
		app     string
		procs   int
		ceiling float64 // steady-state stored/logical upper bound
	}{
		{"SOR", 4, 0.12}, // measured 0.052
		{"SOR", 8, 0.18}, // measured 0.091
		{"FFT", 4, 0.40}, // measured 0.275: the kernel rewrites nearly every
		// resident page each phase, so page-granularity chunking has little
		// unchanged data to share
		{"FFT", 8, 0.32}, // measured 0.206
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("%s/p%d", tc.app, tc.procs), func(t *testing.T) {
			rec := telemetry.New(telemetry.Config{Procs: tc.procs, Cap: -1, FlightSink: io.Discard})
			r, err := Run(RunConfig{App: tc.app, Scale: 0.25, Procs: tc.procs, Detect: true, Recorder: rec})
			if err != nil {
				t.Fatal(err)
			}
			// Per-epoch stored cost: KCheckpoint carries the manifest and
			// logical bytes for (proc, epoch A); the KCkptChunk that follows
			// it from the same proc carries the fresh chunk bytes (C).
			stored := map[int64]int64{}
			logical := map[int64]int64{}
			lastEpoch := map[int32]int64{}
			var maxE int64
			for _, e := range rec.Events() {
				switch e.Kind {
				case telemetry.KCheckpoint:
					stored[e.A] += e.B
					logical[e.A] += e.C
					lastEpoch[e.Proc] = e.A
					if e.A > maxE {
						maxE = e.A
					}
				case telemetry.KCkptChunk:
					stored[lastEpoch[e.Proc]] += e.C
				}
			}
			if maxE < 2 {
				t.Fatalf("only %d epochs: no steady state to measure", maxE)
			}
			var ssStored, ssLogical int64
			for ep := int64(2); ep <= maxE; ep++ {
				ssStored += stored[ep]
				ssLogical += logical[ep]
			}
			ss := float64(ssStored) / float64(ssLogical)
			t.Logf("%s p%d: %d epochs; first epoch %d/%d (%.1f%%); steady state %d/%d per epoch (%.1f%%); cumulative %.1f%%",
				tc.app, tc.procs, maxE,
				stored[1], logical[1], 100*float64(stored[1])/float64(logical[1]),
				ssStored/(maxE-1), ssLogical/(maxE-1), 100*ss,
				100*float64(r.Checkpoint.Bytes)/float64(r.Checkpoint.LogicalBytes))
			if ss > tc.ceiling {
				t.Errorf("steady-state stored/logical = %.3f exceeds the %.2f ceiling", ss, tc.ceiling)
			}
		})
	}
}
