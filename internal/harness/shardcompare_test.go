package harness

import (
	"bytes"
	"strings"
	"testing"

	"lrcrace/internal/dsm"
	"lrcrace/internal/telemetry"
)

func TestPctNSNearestRank(t *testing.T) {
	s := []int64{40, 10, 30, 20}
	for _, tc := range []struct {
		q    float64
		want int64
	}{
		{0.50, 20}, // ceil(0.5*4)=2nd of sorted {10,20,30,40}
		{0.99, 40},
		{0.25, 10},
		{1.00, 40},
	} {
		if got := pctNS(s, tc.q); got != tc.want {
			t.Errorf("pctNS(%v, %v) = %d, want %d", s, tc.q, got, tc.want)
		}
	}
	if got := pctNS(nil, 0.5); got != 0 {
		t.Errorf("pctNS(nil) = %d, want 0", got)
	}
}

// TestShardSyntheticSpeedup is the measurement path's own check: on the
// check-bound false-sharing workload the sharded barrier wait must be
// strictly below the serial one, over an identical check list.
func TestShardSyntheticSpeedup(t *testing.T) {
	serialW, serialEnt, err := runShardSynthetic(4, false)
	if err != nil {
		t.Fatal(err)
	}
	shardW, shardEnt, err := runShardSynthetic(4, true)
	if err != nil {
		t.Fatal(err)
	}
	if serialEnt == 0 || serialEnt != shardEnt {
		t.Fatalf("check-list entries: serial %d, sharded %d; want equal and nonzero", serialEnt, shardEnt)
	}
	if len(serialW) == 0 || len(serialW) != len(shardW) {
		t.Fatalf("barrier wait samples: serial %d, sharded %d", len(serialW), len(shardW))
	}
	sp50, dp50 := pctNS(serialW, 0.5), pctNS(shardW, 0.5)
	if dp50 >= sp50 {
		t.Errorf("sharded p50 wait %dns not below serial %dns", dp50, sp50)
	}
}

// TestFillMetricsSplitsCheckWorkPerProc: the comparison-work counters must
// be published per process (labeled by proc) rather than as one global
// total silently attributed to the master.
func TestFillMetricsSplitsCheckWorkPerProc(t *testing.T) {
	r := &Result{}
	r.Procs = []dsm.Stats{
		{CheckEntriesCompared: 2, BitmapsCompared: 3},
		{CheckEntriesCompared: 7, BitmapsCompared: 5},
	}
	reg := telemetry.NewRegistry()
	r.FillMetrics(reg)
	snap := reg.Snapshot()

	for key, want := range map[string]int64{
		`race_bitmaps_compared_total{proc="0"}`: 3,
		`race_bitmaps_compared_total{proc="1"}`: 5,
		`race_check_entries_total{proc="0"}`:    2,
		`race_check_entries_total{proc="1"}`:    7,
	} {
		if got := snap.Counters[key]; got != want {
			t.Errorf("snapshot %s = %d, want %d", key, got, want)
		}
	}
	if got := snap.CounterTotal("race_bitmaps_compared_total"); got != 8 {
		t.Errorf("race_bitmaps_compared_total family sums to %d, want 8", got)
	}
	if _, ok := snap.Counters["race_bitmaps_compared_total"]; ok {
		t.Error("unlabeled race_bitmaps_compared_total series still published")
	}

	var prom bytes.Buffer
	if err := reg.WriteProm(&prom); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), `race_check_entries_total{proc="1"} 7`) {
		t.Error("Prometheus exposition missing the per-proc check-entry series")
	}
}
