package harness

import (
	"fmt"
	"strings"
	"time"

	"lrcrace/internal/dsm"
	"lrcrace/internal/mem"
	"lrcrace/internal/reliable"
	"lrcrace/internal/telemetry"
)

// The chaos applications are epoch-structured workloads (dsm.RunEpochs)
// rather than whole-program benchmarks, which is what makes them
// recoverable: a crash plan rolls them back to the latest verified
// checkpoint line and re-executes. They mirror the shapes of the paper's
// applications — ChaosTSP is the branch-and-bound bound variable updated
// under a lock but read unsynchronized for pruning; ChaosMW drives the
// multi-writer diff protocol with false sharing, a write-write overlap,
// and a lock-ordered counter — scaled down to a few pages so a sweep cell
// completes in milliseconds.

// ChaosAppNames lists the epoch-structured, crash-recoverable apps.
var ChaosAppNames = []string{"ChaosTSP", "ChaosMW"}

// CrashModes are the recognized RunConfig.CrashMode values.
var CrashModes = []string{"none", "single", "double", "recovery"}

// CorruptModes are the recognized RunConfig.CorruptMode values.
var CorruptModes = []string{"none", "chunk", "delete"}

const chaosDefaultEpochs = 4

// IsChaosApp reports whether name is an epoch-structured chaos app.
func IsChaosApp(name string) bool {
	for _, a := range ChaosAppNames {
		if a == name {
			return true
		}
	}
	return false
}

func chaosAppNames() string { return strings.Join(ChaosAppNames, ", ") }

// chaosMode normalizes an empty mode to "none".
func chaosMode(m string) string {
	if m == "" {
		return "none"
	}
	return m
}

// chaosPlans derives the deterministic fault plans one chaos run injects
// from its seed. Crash epochs are clamped to ≥1 so at least one checkpoint
// line exists to roll back to (the epoch-0 full-restart path has its own
// dedicated tests), and the corruption plan targets exactly the crash
// epoch's line: every process deposits that line on entering the epoch,
// before the victim dies mid-epoch, so the corruption always lands before
// rollback planning reads the store.
func chaosPlans(cfg RunConfig, n int, epochs int32) ([]*dsm.CrashPlan, *dsm.CorruptionPlan, error) {
	crashMode, corruptMode := chaosMode(cfg.CrashMode), chaosMode(cfg.CorruptMode)
	if crashMode == "none" {
		if corruptMode != "none" {
			return nil, nil, fmt.Errorf("harness: CorruptMode %q requires a CrashMode: without a crash nothing ever reads the corrupted checkpoints back", corruptMode)
		}
		return nil, nil, nil
	}
	if epochs < 2 {
		return nil, nil, fmt.Errorf("harness: CrashMode %q needs at least 2 epochs, got %d", crashMode, epochs)
	}

	first := dsm.RandomCrashPlan(cfg.ChaosSeed, n, epochs)
	if first == nil {
		return nil, nil, fmt.Errorf("harness: %d procs leave no valid crash victim", n)
	}
	if first.Epoch == 0 {
		first.Epoch = 1
	}
	crashes := []*dsm.CrashPlan{first}

	switch crashMode {
	case "single":
	case "double":
		if n < 3 {
			return nil, nil, fmt.Errorf("harness: CrashMode double needs at least 3 procs for two distinct victims, got %d", n)
		}
		second := dsm.RandomCrashPlan(cfg.ChaosSeed+0xd0b51e, n, epochs)
		second.Epoch = first.Epoch // two victims in the same epoch
		if second.Victim == first.Victim {
			second.Victim = 1 + second.Victim%(n-1)
		}
		crashes = append(crashes, second)
	case "recovery":
		second := dsm.RandomCrashPlan(cfg.ChaosSeed+0x5ec0fd, n, epochs)
		second.Epoch = first.Epoch // strikes the re-executed epoch
		second.DuringRecovery = true
		crashes = append(crashes, second)
	default:
		return nil, nil, fmt.Errorf("harness: unknown CrashMode %q (want %s)", crashMode, strings.Join(CrashModes, "|"))
	}

	var corrupt *dsm.CorruptionPlan
	switch corruptMode {
	case "none":
	case "chunk":
		corrupt = &dsm.CorruptionPlan{Epoch: first.Epoch, Mode: dsm.CorruptChunk, Seed: cfg.ChaosSeed ^ 0xc0ffee}
	case "delete":
		corrupt = &dsm.CorruptionPlan{Epoch: first.Epoch, Mode: dsm.DeleteChunk, Seed: cfg.ChaosSeed ^ 0xc0ffee}
	default:
		return nil, nil, fmt.Errorf("harness: unknown CorruptMode %q (want %s)", corruptMode, strings.Join(CorruptModes, "|"))
	}
	return crashes, corrupt, nil
}

// chaosSetup allocates one chaos app's shared state and returns its epoch
// body factory plus the post-run verification (final memory must match the
// crash-free execution: rollback may neither lose nor double work).
func chaosSetup(name string, s *dsm.System, n int, epochs int32) (func() dsm.EpochFunc, func() error, error) {
	switch name {
	case "ChaosTSP":
		best, err := s.AllocWords("best", 1)
		if err != nil {
			return nil, nil, err
		}
		tours, err := s.AllocWords("tours", n)
		if err != nil {
			return nil, nil, err
		}
		factory := func() dsm.EpochFunc {
			return func(p *dsm.Proc, e int32) {
				p.Write(tours+mem.Addr(p.ID()*8), uint64(int(e)*10+p.ID()))
				p.Lock(0)
				p.Write(best, p.Read(best)+1)
				p.Unlock(0)
				if p.ID() != 0 {
					p.Read(best) // unsynchronized pruning read: the TSP race
				}
			}
		}
		verify := func() error {
			if got, want := s.SnapshotWord(best), uint64(n)*uint64(epochs); got != want {
				return fmt.Errorf("ChaosTSP: best = %d, want %d", got, want)
			}
			for p := 0; p < n; p++ {
				if got, want := s.SnapshotWord(tours+mem.Addr(p*8)), uint64(int(epochs-1)*10+p); got != want {
					return fmt.Errorf("ChaosTSP: tour slot %d = %d, want %d", p, got, want)
				}
			}
			return nil
		}
		return factory, verify, nil

	case "ChaosMW":
		words, err := s.AllocWords("words", 16)
		if err != nil {
			return nil, nil, err
		}
		counter, err := s.AllocWords("counter", 1)
		if err != nil {
			return nil, nil, err
		}
		factory := func() dsm.EpochFunc {
			return func(p *dsm.Proc, e int32) {
				p.Write(words+mem.Addr(p.ID()*8), uint64(e)+1)
				if p.ID() == 1 || p.ID() == 2 {
					p.Write(words+mem.Addr(10*8), uint64(p.ID())) // write-write overlap
				}
				p.Lock(1)
				p.Write(counter, p.Read(counter)+1)
				p.Unlock(1)
			}
		}
		verify := func() error {
			if got, want := s.SnapshotWord(counter), uint64(n)*uint64(epochs); got != want {
				return fmt.Errorf("ChaosMW: counter = %d, want %d", got, want)
			}
			for p := 0; p < n; p++ {
				if got := s.SnapshotWord(words + mem.Addr(p*8)); got != uint64(epochs) {
					return fmt.Errorf("ChaosMW: slot %d = %d, want %d", p, got, epochs)
				}
			}
			return nil
		}
		return factory, verify, nil
	}
	return nil, nil, fmt.Errorf("harness: unknown chaos app %q", name)
}

// runChaos executes one chaos configuration: derive the seed-driven fault
// plans, run the epoch-structured body under RunEpochs (which converges via
// repeated rollback), and verify final shared memory against the crash-free
// execution. The reliable sublayer is always on — link-death detection is
// how survivors notice a victim — with the same aggressive retry cap the
// recovery tests use, and the barrier wall timeout as backstop.
func runChaos(cfg RunConfig) (*Result, error) {
	n := cfg.Procs
	epochs := int32(cfg.Epochs)
	if epochs == 0 {
		epochs = chaosDefaultEpochs
	}
	crashes, corrupt, err := chaosPlans(cfg, n, epochs)
	if err != nil {
		return nil, err
	}
	rec := cfg.Recorder
	if rec == nil && cfg.Telemetry != nil {
		tc := *cfg.Telemetry
		if tc.Procs == 0 {
			tc.Procs = n
		}
		rec = telemetry.New(tc)
	}
	rc := cfg.ReliableConfig
	if rc.RTO == 0 {
		rc = reliable.Config{RTO: 2 * time.Millisecond, MaxRTO: 50 * time.Millisecond, MaxRetries: 8}
	}
	bwt := cfg.BarrierWallTimeout
	if bwt == 0 {
		bwt = 2 * time.Second
	}
	sys, err := dsm.New(dsm.Config{
		NumProcs:           n,
		SharedSize:         16 * 1024,
		PageSize:           1024,
		Protocol:           cfg.Protocol,
		Detect:             cfg.Detect,
		ShardedCheck:       cfg.ShardedCheck,
		BarrierTree:        cfg.BarrierTree,
		FirstOnly:          cfg.FirstOnly,
		PageBitmapOverlap:  cfg.PageBitmapOverlap,
		WritesFromDiffs:    cfg.WritesFromDiffs,
		RealMsgDelay:       cfg.RealMsgDelay,
		Faults:             cfg.Faults,
		Reliable:           true,
		ReliableConfig:     rc,
		BarrierWallTimeout: bwt,
		NoCheckpoint:       cfg.NoCheckpoint,
		CheckpointRetain:   cfg.CheckpointRetain,
		Crashes:            crashes,
		Corruption:         corrupt,
		Recorder:           rec,
	})
	if err != nil {
		return nil, err
	}
	factory, verify, err := chaosSetup(cfg.App, sys, n, epochs)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	if err := sys.RunEpochs(epochs, func() dsm.EpochFunc { return factory() }); err != nil {
		return nil, err
	}
	wall := time.Since(start)
	if !cfg.SkipVerify {
		if err := verify(); err != nil {
			return nil, fmt.Errorf("harness: %s failed verification: %w", cfg.App, err)
		}
	}
	res := &Result{
		Cfg:       cfg,
		Sys:       sys,
		Model:     sys.Config().Model,
		VirtualNS: sys.VirtualTime(),
		WallNS:    wall.Nanoseconds(),
		Races:     sys.Races(),
		Det:       sys.DetectorStats(),
		Net:       sys.NetStats(),
		MemBytes:  sys.AllocBytes(),

		Checkpoint: sys.CheckpointStats(),
		Recovery:   sys.RecoveryStats(),
	}
	for _, p := range sys.Procs() {
		res.Procs = append(res.Procs, p.Stats())
	}
	if rec != nil {
		res.Telemetry = rec
		res.FillMetrics(rec.Metrics())
	}
	return res, nil
}
