package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"lrcrace/internal/dsm"
	"lrcrace/internal/mem"
	"lrcrace/internal/reliable"
	"lrcrace/internal/simnet"
	"lrcrace/internal/telemetry"
)

// TestTelemetryTSPExport is the tentpole acceptance check: a TSP run with a
// recorder attached exports valid Chrome trace-event JSON with one track per
// process, and a metrics snapshot that reconciles exactly with the run's
// dsm.Stats and simnet.Stats.
func TestTelemetryTSPExport(t *testing.T) {
	res, err := Run(RunConfig{
		App:       "TSP",
		Scale:     0.1,
		Procs:     4,
		Detect:    true,
		Telemetry: &telemetry.Config{},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := res.Telemetry
	if rec == nil {
		t.Fatal("Result.Telemetry not set")
	}
	if rec.Procs() != 4 {
		t.Fatalf("recorder procs = %d, want the run's 4", rec.Procs())
	}

	var b bytes.Buffer
	if err := rec.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string                 `json:"name"`
			Ph   string                 `json:"ph"`
			Tid  int                    `json:"tid"`
			Args map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	threads := map[int]string{}
	eventsByTid := map[int]int{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" && e.Name == "thread_name" {
			threads[e.Tid] = e.Args["name"].(string)
		} else if e.Ph != "M" {
			eventsByTid[e.Tid]++
		}
	}
	if len(threads) != 5 || threads[4] != "system" {
		t.Fatalf("thread tracks = %v, want proc 0..3 + system", threads)
	}
	for tid := 0; tid < 4; tid++ {
		if threads[tid] != fmt.Sprintf("proc %d", tid) {
			t.Errorf("tid %d named %q", tid, threads[tid])
		}
		if eventsByTid[tid] == 0 {
			t.Errorf("no events on proc %d's track", tid)
		}
	}

	// Snapshot reconciliation with the raw stats structs.
	snap := res.MetricsSnapshot()
	var locks, barriers, readFaults int64
	for _, st := range res.Procs {
		locks += st.LockAcquires
		barriers += st.Barriers
		readFaults += st.ReadFaults
	}
	for _, c := range []struct {
		name string
		want int64
	}{
		{"dsm_lock_acquires_total", locks},
		{"dsm_barriers_total", barriers},
		{"dsm_read_faults_total", readFaults},
		{"net_bytes_total", res.Net.TotalBytes()},
		{"net_messages_total", res.Net.TotalMessages()},
		{"races_found_total", int64(len(res.Races))},
		{"race_epochs_total", int64(res.Det.Epochs)},
		// Event-derived counters agree with the stats the sites account:
		// every Lock() emits exactly one LockAcquired event.
		{`telemetry_events_total{kind="LockAcquired"}`, locks},
	} {
		if got := snap.CounterTotal(c.name); got != c.want {
			t.Errorf("snapshot %s = %d, want %d", c.name, got, c.want)
		}
	}
	if got := snap.Gauges["run_virtual_ns"]; got != float64(res.VirtualNS) {
		t.Errorf("run_virtual_ns = %v, want %d", got, res.VirtualNS)
	}
	if len(res.Races) == 0 {
		t.Error("TSP run found no races (expected its racy tour bound)")
	}

	// The same registry must expose cleanly as Prometheus text.
	var prom bytes.Buffer
	if err := rec.Metrics().WriteProm(&prom); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), "# TYPE dsm_lock_acquires_total counter") {
		t.Error("Prometheus exposition missing dsm_lock_acquires_total family")
	}
}

// barrierOnlyTrace runs a dsm-level workload in which every process writes
// only pages homed at it and synchronizes by barrier — every virtual
// timestamp is then independent of real scheduling — and returns the Chrome
// trace export.
func barrierOnlyTrace(t *testing.T) []byte {
	t.Helper()
	const procs = 4
	ps := mem.DefaultPageSize
	// Checkpointing off: the content-addressed chunk store dedups across
	// processes, so whether a chunk write is a put or a dedup hit — and when
	// retention GC fires — depends on which process serializes first, which
	// is real scheduling. Those events are honestly nondeterministic; this
	// test is about the exporter's virtual-time determinism.
	sys, err := dsm.New(dsm.Config{NumProcs: procs, SharedSize: procs * ps, Detect: true, NoCheckpoint: true})
	if err != nil {
		t.Fatal(err)
	}
	rec := telemetry.Start(telemetry.Config{Procs: procs})
	defer telemetry.Stop()
	err = sys.Run(func(p *dsm.Proc) {
		base := ps * p.ID()
		for round := 0; round < 3; round++ {
			for w := 0; w < 8; w++ {
				p.Write(mem.Addr(base+8*w), uint64(round))
			}
			p.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := rec.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestChromeTraceSameSeedDeterministic asserts the exported timeline of a
// deterministic workload is byte-identical across runs: virtual timestamps
// come from the cost model and the exporter orders canonically, so real
// goroutine scheduling must not leak into the artifact.
func TestChromeTraceSameSeedDeterministic(t *testing.T) {
	t1 := barrierOnlyTrace(t)
	t2 := barrierOnlyTrace(t)
	if !bytes.Equal(t1, t2) {
		t.Fatal("chrome trace differs across identical runs")
	}
	// And it is a loadable, non-trivial document.
	var doc map[string]interface{}
	if err := json.Unmarshal(t1, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if !bytes.Contains(t1, []byte("BarrierArrive")) {
		t.Error("trace carries no barrier events")
	}
}

// TestFlightRecorderOnRetryCapChaos asserts the flight recorder's black-box
// behavior: a run over a catastrophically lossy wire exhausts the reliable
// sublayer's retry cap, the link is declared dead, and the armed recorder
// dumps a coherent tail of events — including the retransmissions that led
// up to the failure — to the configured sink.
func TestFlightRecorderOnRetryCapChaos(t *testing.T) {
	var sink bytes.Buffer
	rec := telemetry.Start(telemetry.Config{
		Procs:      4,
		FlightN:    64,
		FlightSink: &sink,
	})
	defer telemetry.Stop()

	_, err := Run(RunConfig{
		App:      "SOR",
		Scale:    0.05,
		Procs:    4,
		Protocol: dsm.SingleWriter,
		Faults:   &simnet.FaultPlan{Seed: 7, Drop: 0.95},
		Reliable: true,
		ReliableConfig: reliable.Config{
			RTO:        200 * time.Microsecond,
			MaxRetries: 2,
		},
	})
	if err == nil {
		t.Fatal("run survived a 95 percent drop wire with a 2-round retry cap")
	}
	if rec.Trips() == 0 {
		t.Fatal("flight recorder never tripped")
	}
	out := sink.String()
	if !strings.Contains(out, "--- flight recorder:") {
		t.Fatalf("sink has no dump header:\n%s", out)
	}
	if !strings.Contains(out, "Retransmit") {
		t.Errorf("dump shows no retransmissions before death:\n%s", out)
	}
	if !strings.Contains(out, "LinkDead") {
		t.Errorf("dump does not include the fatal LinkDead event:\n%s", out)
	}
	if !strings.Contains(out, "--- end flight dump ---") {
		t.Error("dump not terminated")
	}
}
