package harness

import (
	"fmt"
	"strconv"
	"time"

	"lrcrace/internal/gofront"
	"lrcrace/internal/telemetry"
)

// Frontends are the execution engines a RunConfig can select.
var Frontends = []string{"dsm", "go"}

// IsGoFrontend reports whether the frontend name selects the gofront
// engine ("" and "dsm" select the simulated DSM).
func IsGoFrontend(name string) bool { return name == "go" }

// KnownFrontend reports whether name is a valid Frontend value.
func KnownFrontend(name string) bool {
	if name == "" {
		return true
	}
	for _, f := range Frontends {
		if f == name {
			return true
		}
	}
	return false
}

// runGoFront executes a go-frontend workload run: cfg.App names a
// registered gofront workload, cfg.Procs is the client count, and the
// result carries the gofront trace and race set in place of the DSM state.
func runGoFront(cfg RunConfig) (*Result, error) {
	rec := cfg.Recorder
	if rec == nil && cfg.Telemetry != nil {
		tc := *cfg.Telemetry
		if tc.Procs == 0 {
			// Rings are per goroutine here; workloads add a few service
			// goroutines (janitor, actors) on top of the clients. Events
			// from ids beyond this land on the system ring.
			tc.Procs = cfg.Procs + 2
		}
		rec = telemetry.New(tc)
	}
	start := time.Now()
	gres, err := gofront.RunWorkload(cfg.App, gofront.WorkloadConfig{
		Clients:    cfg.Procs,
		Ops:        cfg.OpsPerClient,
		Scale:      cfg.Scale,
		HotKeySkew: cfg.HotKeySkew,
		Racy:       cfg.Racy,
		Seed:       cfg.Seed,
		Detect:     cfg.Detect,
		Recorder:   rec,
	})
	if err != nil {
		return nil, err
	}
	if gres.Deadlocked {
		return nil, fmt.Errorf("harness: go-frontend workload %s deadlocked", cfg.App)
	}
	res := &Result{
		Cfg:       cfg,
		GoFront:   gres,
		VirtualNS: gres.VirtualNS,
		WallNS:    time.Since(start).Nanoseconds(),
		Races:     gres.Races,
	}
	if rec != nil {
		res.Telemetry = rec
		res.FillMetrics(rec.Metrics())
	}
	return res, nil
}

// fillGoFrontMetrics publishes a go-frontend run's counters as gofront_*
// series, plus the shared races_found_total and run_* series the DSM path
// also exports, so sweep aggregation reads both frontends uniformly.
func (r *Result) fillGoFrontMetrics(reg *telemetry.Registry) {
	st := r.GoFront.Stats
	w := telemetry.Label{Key: "workload", Value: r.Cfg.App}
	for _, c := range []struct {
		name, help string
		v          int64
	}{
		{"gofront_goroutines_total", "Goroutines the program spawned.", int64(st.Goroutines)},
		{"gofront_loads_total", "Modeled shared loads.", int64(st.Loads)},
		{"gofront_stores_total", "Modeled shared stores.", int64(st.Stores)},
		{"gofront_sync_ops_total", "Synchronization operations committed.", int64(st.Syncs)},
		{"gofront_chan_ops_total", "Channel operations committed.", int64(st.ChanOps)},
		{"gofront_lock_ops_total", "Mutex and RWMutex operations committed.", int64(st.LockOps)},
		{"gofront_wg_ops_total", "WaitGroup operations committed.", int64(st.WGOps)},
		{"gofront_spawn_ops_total", "Go and Join operations committed.", int64(st.SpawnOps)},
		{"gofront_intervals_total", "Interval records materialized.", int64(st.Intervals)},
		{"gofront_pairs_examined_total", "Record pairs version-vector-compared.", int64(st.PairsExamined)},
		{"gofront_concurrent_pairs_total", "Record pairs found concurrent.", int64(st.ConcurrentPairs)},
		{"gofront_check_entries_total", "Bitmap-comparison check entries built.", int64(st.CheckEntries)},
		{"gofront_bitmaps_compared_total", "Bitmap pairs fetched and compared.", int64(st.BitmapsCompared)},
		{"gofront_word_overlaps_total", "Racing words found before dedup.", int64(st.WordOverlaps)},
		{"gofront_records_gced_total", "Records retired by the knowledge-horizon GC.", int64(st.RecordsGCed)},
		{"gofront_sched_steps_total", "Deterministic scheduler steps.", st.SchedSteps},
	} {
		reg.Counter(c.name, c.help, w).Add(c.v)
	}
	reg.Counter("races_found_total", "Dynamic race reports delivered.").Add(int64(len(r.Races)))
	reg.Gauge("run_virtual_ns", "End-to-end virtual runtime.").Set(float64(r.VirtualNS))
	reg.Gauge("run_wall_ns", "End-to-end wall-clock runtime.").Set(float64(r.WallNS))
	reg.Gauge("gofront_clients", "Traffic-driving client goroutines.",
		w, telemetry.Label{Key: "racy", Value: strconv.FormatBool(r.Cfg.Racy)}).
		Set(float64(r.Cfg.Procs))
}
