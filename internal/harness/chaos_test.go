package harness

import (
	"reflect"
	"sort"
	"testing"

	"lrcrace/internal/dsm"
	"lrcrace/internal/simnet"
)

// TestChaosSoakSOR is the acceptance soak: a full application kernel (SOR)
// runs over the reliability sublayer on a wire with 10% drop, 5% dup and
// reordering, passes its result verification, reports the same racy
// variables as the fault-free run, and shows nonzero retransmit counters.
func TestChaosSoakSOR(t *testing.T) {
	base := RunConfig{
		App:      "SOR",
		Scale:    0.05,
		Procs:    4,
		Protocol: dsm.SingleWriter,
		Detect:   true,
	}
	clean, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	chaos := base
	chaos.Faults = &simnet.FaultPlan{Seed: 20260805, Drop: 0.10, Dup: 0.05, Reorder: 0.10, MaxReorder: 3}
	chaos.Reliable = true
	dirty, err := Run(chaos) // Run verifies the SOR result internally
	if err != nil {
		t.Fatal(err)
	}

	cv, dv := clean.RacyVariables(), dirty.RacyVariables()
	sort.Strings(cv)
	sort.Strings(dv)
	if !reflect.DeepEqual(cv, dv) {
		t.Errorf("racy variables differ: clean=%v chaos=%v", cv, dv)
	}

	st := dirty.Net
	if st.TotalDropped() == 0 {
		t.Error("chaos wire dropped nothing")
	}
	if st.Retransmits == 0 {
		t.Error("no retransmissions despite 10%% drop")
	}
	if st.RetransBytes == 0 {
		t.Error("retransmit bytes not accounted")
	}
	if st.Errors != 0 {
		t.Errorf("reliability layer reported %d errors (dead links)", st.Errors)
	}
}
