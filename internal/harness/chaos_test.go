package harness

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"lrcrace/internal/dsm"
	"lrcrace/internal/simnet"
)

// TestChaosSoakSOR is the acceptance soak: a full application kernel (SOR)
// runs over the reliability sublayer on a wire with 10% drop, 5% dup and
// reordering, passes its result verification, reports the same racy
// variables as the fault-free run, and shows nonzero retransmit counters.
func TestChaosSoakSOR(t *testing.T) {
	base := RunConfig{
		App:      "SOR",
		Scale:    0.05,
		Procs:    4,
		Protocol: dsm.SingleWriter,
		Detect:   true,
	}
	clean, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	chaos := base
	chaos.Faults = &simnet.FaultPlan{Seed: 20260805, Drop: 0.10, Dup: 0.05, Reorder: 0.10, MaxReorder: 3}
	chaos.Reliable = true
	dirty, err := Run(chaos) // Run verifies the SOR result internally
	if err != nil {
		t.Fatal(err)
	}

	cv, dv := clean.RacyVariables(), dirty.RacyVariables()
	sort.Strings(cv)
	sort.Strings(dv)
	if !reflect.DeepEqual(cv, dv) {
		t.Errorf("racy variables differ: clean=%v chaos=%v", cv, dv)
	}

	st := dirty.Net
	if st.TotalDropped() == 0 {
		t.Error("chaos wire dropped nothing")
	}
	if st.Retransmits == 0 {
		t.Error("no retransmissions despite 10%% drop")
	}
	if st.RetransBytes == 0 {
		t.Error("retransmit bytes not accounted")
	}
	if st.Errors != 0 {
		t.Errorf("reliability layer reported %d errors (dead links)", st.Errors)
	}
}

// TestChaosApps runs every chaos application through every crash mode:
// the epoch-structured workloads must converge through rollback and pass
// their own verification (exactly-once lock-ordered updates, per-proc
// slots at their final values) whatever the injected failure.
func TestChaosApps(t *testing.T) {
	for _, app := range ChaosAppNames {
		for _, mode := range CrashModes {
			app, mode := app, mode
			t.Run(fmt.Sprintf("%s/%s", app, mode), func(t *testing.T) {
				t.Parallel()
				r, err := Run(RunConfig{
					App: app, Procs: 4, Detect: true,
					CrashMode: mode, ChaosSeed: 3,
				})
				if err != nil {
					t.Fatal(err)
				}
				if mode != "none" && r.Recovery.Recoveries < 1 {
					t.Errorf("crash mode %q performed no recovery", mode)
				}
				if r.Checkpoint.Count == 0 {
					t.Error("chaos run deposited no checkpoints")
				}
			})
		}
	}
}

// TestChaosCorruption layers checkpoint damage on top of a crash: the
// rollback must reject the damaged epoch (a verify failure), fall back,
// and still verify the application result.
func TestChaosCorruption(t *testing.T) {
	for _, corrupt := range []string{"chunk", "delete"} {
		corrupt := corrupt
		t.Run(corrupt, func(t *testing.T) {
			t.Parallel()
			r, err := Run(RunConfig{
				App: "ChaosTSP", Procs: 4, Detect: true,
				CrashMode: "single", CorruptMode: corrupt, ChaosSeed: 3,
			})
			if err != nil {
				t.Fatal(err)
			}
			if r.Recovery.VerifyFailures < 1 {
				t.Errorf("VerifyFailures = %d, want ≥ 1: the damaged epoch must be rejected",
					r.Recovery.VerifyFailures)
			}
		})
	}
}

// TestChaosConfigRejected pins the configuration contract: chaos modes
// apply only to the epoch-structured chaos apps, and corruption is only
// meaningful under a crash.
func TestChaosConfigRejected(t *testing.T) {
	cases := []struct {
		name string
		cfg  RunConfig
	}{
		{"crash mode on whole-program app", RunConfig{App: "SOR", Procs: 2, CrashMode: "single"}},
		{"corrupt mode on whole-program app", RunConfig{App: "TSP", Procs: 2, CorruptMode: "chunk"}},
		{"corruption without a crash", RunConfig{App: "ChaosTSP", Procs: 4, CorruptMode: "chunk"}},
		{"unknown crash mode", RunConfig{App: "ChaosTSP", Procs: 4, CrashMode: "thrice"}},
		{"unknown corrupt mode", RunConfig{App: "ChaosTSP", Procs: 4, CrashMode: "single", CorruptMode: "scribble"}},
		{"double crash needs three procs", RunConfig{App: "ChaosMW", Procs: 2, CrashMode: "double"}},
		{"crash with checkpointing off", RunConfig{App: "ChaosTSP", Procs: 4, CrashMode: "single", NoCheckpoint: true}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Run(tc.cfg); err == nil {
				t.Errorf("config %+v accepted, want error", tc.cfg)
			}
		})
	}
}

// TestCheckpointDedupFloor is the checkpoint-size smoke: always-on
// chunked checkpointing must keep stored bytes well under the full
// serialization cost. The ceilings pin the measured ratios with headroom
// (SOR ≈ 0.06 stored/logical at these parameters, ChaosMW ≈ 0.21); a
// regression past them means structural sharing broke.
func TestCheckpointDedupFloor(t *testing.T) {
	cases := []struct {
		cfg     RunConfig
		ceiling float64
	}{
		{RunConfig{App: "SOR", Scale: 0.25, Procs: 4, Detect: true}, 0.15},
		{RunConfig{App: "ChaosMW", Procs: 4, Detect: true}, 0.35},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.cfg.App, func(t *testing.T) {
			t.Parallel()
			r, err := Run(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			c := r.Checkpoint
			if c.LogicalBytes == 0 {
				t.Fatal("run recorded no checkpoint bytes")
			}
			ratio := float64(c.Bytes) / float64(c.LogicalBytes)
			t.Logf("%s: stored %d / logical %d = %.3f (ceiling %.2f)",
				tc.cfg.App, c.Bytes, c.LogicalBytes, ratio, tc.ceiling)
			if ratio > tc.ceiling {
				t.Errorf("dedup ratio %.3f exceeds the %.2f ceiling: chunk sharing regressed",
					ratio, tc.ceiling)
			}
			if c.ChunkHits == 0 {
				t.Error("no chunk dedup hits at all")
			}
		})
	}
}
