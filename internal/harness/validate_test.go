package harness

import (
	"strings"
	"testing"
)

// TestValidateRunConfig pins the admission-time gate: every configuration
// Run would refuse mid-setup is refused here without building a System,
// and runnable configurations pass.
func TestValidateRunConfig(t *testing.T) {
	valid := []RunConfig{
		{App: "FFT", Scale: 0.25, Procs: 2, Detect: true},
		{App: "SOR", Scale: 0.25, Procs: 2},
		{App: "ChaosTSP", Procs: 4, Detect: true},
		{App: "ChaosMW", Procs: 4, CrashMode: "single", Detect: true},
		{App: "ChaosTSP", Procs: 4, CrashMode: "single", CorruptMode: "chunk"},
	}
	for _, cfg := range valid {
		if err := ValidateRunConfig(cfg); err != nil {
			t.Errorf("ValidateRunConfig(%+v) = %v, want nil", cfg, err)
		}
	}

	invalid := []struct {
		cfg  RunConfig
		want string // substring of the error
	}{
		{RunConfig{Procs: 2}, "no application"},
		{RunConfig{App: "FFT", Procs: 0}, "Procs"},
		{RunConfig{App: "FFT", Procs: 2, Scale: -1}, "Scale"},
		{RunConfig{App: "Nope", Procs: 2}, "unknown application"},
		{RunConfig{App: "FFT", Procs: 2, ShardedCheck: true}, "requires Detect"},
		{RunConfig{App: "FFT", Procs: 2, CrashMode: "single"}, "chaos app"},
		{RunConfig{App: "TSP", Procs: 2, CorruptMode: "chunk"}, "chaos app"},
		{RunConfig{App: "ChaosTSP", Procs: 4, CrashMode: "single", NoCheckpoint: true}, "checkpointing"},
		{RunConfig{App: "ChaosTSP", Procs: 4, CorruptMode: "chunk"}, "CrashMode"},
		{RunConfig{App: "ChaosMW", Procs: 2, CrashMode: "double"}, "procs"},
		{RunConfig{App: "ChaosTSP", Procs: 4, CrashMode: "thrice"}, "CrashMode"},
	}
	for _, tc := range invalid {
		err := ValidateRunConfig(tc.cfg)
		if err == nil {
			t.Errorf("ValidateRunConfig(%+v) = nil, want error containing %q", tc.cfg, tc.want)
			continue
		}
		if !strings.Contains(strings.ToLower(err.Error()), strings.ToLower(tc.want)) {
			t.Errorf("ValidateRunConfig(%+v) = %q, want substring %q", tc.cfg, err, tc.want)
		}
	}
}

// TestRunRejectsInvalidConfigEarly: Run itself goes through the same
// gate, so a doomed configuration fails before any System is built.
func TestRunRejectsInvalidConfigEarly(t *testing.T) {
	if _, err := Run(RunConfig{App: "FFT", Procs: 2, ShardedCheck: true}); err == nil {
		t.Error("Run accepted ShardedCheck without Detect")
	}
	if _, err := Run(RunConfig{App: "Nope", Procs: 2}); err == nil {
		t.Error("Run accepted an unknown application")
	}
}
