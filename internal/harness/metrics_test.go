package harness

import (
	"math"
	"testing"

	"lrcrace/internal/costmodel"
	"lrcrace/internal/dsm"
	"lrcrace/internal/msg"
	"lrcrace/internal/race"
	"lrcrace/internal/simnet"
)

// synthetic builds a Result with hand-set counters for metric unit tests.
func synthetic() *Result {
	r := &Result{
		Model:     costmodel.Default(),
		VirtualNS: 2_000_000_000, // 2 virtual seconds
		Det: race.Stats{
			IntervalsTotal:    200,
			IntervalsInvolved: 30,
		},
	}
	r.Procs = []dsm.Stats{
		{IntervalsCreated: 40, Barriers: 10, BitmapsCreated: 100, BitmapsSent: 5,
			ReadNoticeBytes: 600, SharedReads: 1000, SharedWrites: 200, PrivateAccesses: 3000},
		{IntervalsCreated: 44, Barriers: 10, BitmapsCreated: 100, BitmapsSent: 15,
			ReadNoticeBytes: 400, SharedReads: 800, SharedWrites: 400, PrivateAccesses: 2600},
	}
	var net simnet.Stats
	net.Bytes[msg.TPageReply] = 90_000
	net.Bytes[msg.TBarrierArrive] = 10_000
	net.Bytes[msg.TBitmapReply] = 15_000
	r.Net = net
	return r
}

func approx(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("%s = %v, want %v", name, got, want)
	}
}

func TestIntervalsPerBarrier(t *testing.T) {
	r := synthetic()
	approx(t, "IntervalsPerBarrier", r.IntervalsPerBarrier(), float64(40+44)/20)
	r.Procs = nil
	approx(t, "no barriers", r.IntervalsPerBarrier(), 0)
}

func TestIntervalsUsedPct(t *testing.T) {
	r := synthetic()
	approx(t, "IntervalsUsedPct", r.IntervalsUsedPct(), 15)
	r.Det.IntervalsTotal = 0
	approx(t, "empty", r.IntervalsUsedPct(), 0)
}

func TestBitmapsUsedPct(t *testing.T) {
	r := synthetic()
	approx(t, "BitmapsUsedPct", r.BitmapsUsedPct(), 10) // 20 of 200
	r.Procs = nil
	approx(t, "empty", r.BitmapsUsedPct(), 0)
}

func TestMsgOverheadPct(t *testing.T) {
	r := synthetic()
	// total=115000, bitmap round=15000, read notices=1000 → 1000/99000.
	approx(t, "MsgOverheadPct", r.MsgOverheadPct(), 100*1000.0/99000.0)
}

func TestAccessRates(t *testing.T) {
	r := synthetic()
	sh, pr := r.AccessRates()
	approx(t, "shared/s", sh, 2400/2.0)
	approx(t, "private/s", pr, 5600/2.0)
	r.VirtualNS = 0
	sh, pr = r.AccessRates()
	approx(t, "zero-time shared", sh, 0)
	approx(t, "zero-time private", pr, 0)
}

func TestSlowdownAndBreakdownArithmetic(t *testing.T) {
	base := &Result{VirtualNS: 1_000_000_000}
	det := synthetic()
	det.Procs[0].TProcCall = 100_000_000
	det.Procs[1].TProcCall = 100_000_000
	det.Procs[0].TAccessCheck = 300_000_000
	det.Procs[1].TAccessCheck = 500_000_000
	det.Procs[0].TIntervalCmp = 50_000_000
	approx(t, "Slowdown", Slowdown(base, det), 2)

	o := Breakdown(base, det)
	approx(t, "ProcCall%", o.ProcCall, 10)       // avg 100ms / 1s
	approx(t, "AccessCheck%", o.AccessCheck, 40) // avg 400ms / 1s
	approx(t, "Intervals%", o.Intervals, 5)      // serialized, not averaged
	if o.Total() < o.ProcCall+o.AccessCheck+o.Intervals {
		t.Errorf("Total %v lost components", o.Total())
	}
}

func TestPaperReferenceTablesComplete(t *testing.T) {
	for _, app := range AppNames {
		if _, ok := PaperTable1[app]; !ok {
			t.Errorf("PaperTable1 missing %s", app)
		}
		if _, ok := PaperTable3[app]; !ok {
			t.Errorf("PaperTable3 missing %s", app)
		}
		if _, ok := PaperFigure3[app]; !ok {
			t.Errorf("PaperFigure3 missing %s", app)
		}
		if PaperScaleFactors[app] <= 0 {
			t.Errorf("PaperScaleFactors missing %s", app)
		}
	}
}

func TestRunUnknownApp(t *testing.T) {
	if _, err := Run(RunConfig{App: "nope", Procs: 1}); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestComputeEnhancementsArithmetic(t *testing.T) {
	base := &Result{VirtualNS: 1_000_000_000}
	det := &Result{VirtualNS: 2_000_000_000, Model: costmodel.Default()}
	det.Procs = []dsm.Stats{{SharedReads: 600_000, SharedWrites: 200_000, PrivateAccesses: 1_200_000}}
	e := ComputeEnhancements(base, det)
	approx(t, "BaseOverheadPct", e.BaseOverheadPct, 100)
	approx(t, "StoreShare", e.StoreShare, 0.25)
	approx(t, "PrivateShare", e.PrivateShare, 0.6)
	if !(e.CombinedPct < e.InlinedPct && e.InlinedPct < e.BaseOverheadPct) {
		t.Errorf("enhancement ordering broken: %+v", e)
	}
	if !(e.DiffWritePct < e.BaseOverheadPct && e.IPAPct < e.BaseOverheadPct) {
		t.Errorf("enhancements did not reduce overhead: %+v", e)
	}
	// The paper's §6.5 estimate: stores are ~25% of accesses and
	// instrumentation ~68% of overhead, so diff-writes should save ≥17% of
	// the measured overhead when instrumentation dominates.
	if sav := e.BaseOverheadPct - e.DiffWritePct; sav <= 0 {
		t.Errorf("no diff-write saving: %v", sav)
	}
}
