package castore

import (
	"bytes"
	"errors"
	"sort"
	"testing"
)

func TestPutGetRoundTrip(t *testing.T) {
	s := New()
	blobs := [][]byte{[]byte("alpha"), []byte("beta"), {0, 1, 2, 3}, {}}
	var addrs []Addr
	for _, b := range blobs {
		a, isNew := s.Put(b)
		if !isNew {
			t.Fatalf("first Put of %q not new", b)
		}
		if a != Sum(b) {
			t.Fatalf("Put address != Sum for %q", b)
		}
		addrs = append(addrs, a)
	}
	for i, a := range addrs {
		got, err := s.Get(a)
		if err != nil {
			t.Fatalf("Get(%s): %v", a, err)
		}
		if !bytes.Equal(got, blobs[i]) {
			t.Fatalf("Get(%s) = %q, want %q", a, got, blobs[i])
		}
	}
	if s.Len() != len(blobs) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(blobs))
	}
}

func TestDedupAndStats(t *testing.T) {
	s := New()
	b := []byte("shared page contents")
	a1, new1 := s.Put(b)
	a2, new2 := s.Put(b)
	if a1 != a2 {
		t.Fatal("identical contents produced different addresses")
	}
	if !new1 || new2 {
		t.Fatalf("newness = %v,%v, want true,false", new1, new2)
	}
	st := s.Stats()
	if st.Puts != 2 || st.Hits != 1 {
		t.Fatalf("Puts/Hits = %d/%d, want 2/1", st.Puts, st.Hits)
	}
	if st.StoredBytes != int64(len(b)) || st.LogicalBytes != int64(2*len(b)) {
		t.Fatalf("Stored/Logical = %d/%d, want %d/%d",
			st.StoredBytes, st.LogicalBytes, len(b), 2*len(b))
	}
	if s.Len() != 1 || st.LiveBytes != int64(len(b)) {
		t.Fatalf("Len/LiveBytes = %d/%d, want 1/%d", s.Len(), st.LiveBytes, len(b))
	}
}

func TestRefcountFreesAtZero(t *testing.T) {
	s := New()
	b := []byte("twin")
	a, _ := s.Put(b)
	s.Put(b) // refs = 2
	s.Unref(a)
	if !s.Contains(a) {
		t.Fatal("chunk freed with one reference outstanding")
	}
	s.Unref(a)
	if s.Contains(a) {
		t.Fatal("chunk survived its last Unref")
	}
	if _, err := s.Get(a); !errors.Is(err, ErrMissing) {
		t.Fatalf("Get after free: %v, want ErrMissing", err)
	}
	if st := s.Stats(); st.FreedBytes != int64(len(b)) || st.LiveBytes != 0 {
		t.Fatalf("Freed/Live = %d/%d, want %d/0", st.FreedBytes, st.LiveBytes, len(b))
	}
	s.Unref(a) // absent address: must be a no-op
}

func TestTamperDetectedAndHealed(t *testing.T) {
	s := New()
	b := []byte("page bytes under test")
	a, _ := s.Put(b)
	if !s.Tamper(a) {
		t.Fatal("Tamper found nothing to corrupt")
	}
	if _, err := s.Get(a); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get of tampered chunk: %v, want ErrCorrupt", err)
	}
	// A fresh deposit of the true contents is authoritative: it heals.
	if _, isNew := s.Put(b); isNew {
		t.Fatal("healing Put reported the chunk as new")
	}
	got, err := s.Get(a)
	if err != nil || !bytes.Equal(got, b) {
		t.Fatalf("Get after heal = %q, %v", got, err)
	}
	if st := s.Stats(); st.Heals != 1 || st.Tampers != 1 {
		t.Fatalf("Heals/Tampers = %d/%d, want 1/1", st.Heals, st.Tampers)
	}
}

func TestDeleteDetectedAndHealed(t *testing.T) {
	s := New()
	b := []byte("deleted out from under its refcount")
	a, _ := s.Put(b)
	if !s.Delete(a) {
		t.Fatal("Delete found nothing to drop")
	}
	if _, err := s.Get(a); !errors.Is(err, ErrMissing) {
		t.Fatalf("Get of deleted chunk: %v, want ErrMissing", err)
	}
	if s.Delete(a) {
		t.Fatal("second Delete of the same chunk reported success")
	}
	s.Put(b)
	if got, err := s.Get(a); err != nil || !bytes.Equal(got, b) {
		t.Fatalf("Get after healing re-Put = %q, %v", got, err)
	}
}

func TestTamperEmptyChunk(t *testing.T) {
	s := New()
	a, _ := s.Put(nil)
	if got, err := s.Get(a); err != nil || len(got) != 0 {
		t.Fatalf("Get of empty chunk = %q, %v", got, err)
	}
	if !s.Tamper(a) {
		t.Fatal("Tamper of empty chunk reported nothing there")
	}
	if _, err := s.Get(a); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get of tampered empty chunk: %v, want ErrCorrupt", err)
	}
}

func TestAddrsSortedDeterministic(t *testing.T) {
	s := New()
	for _, b := range [][]byte{[]byte("c"), []byte("a"), []byte("b"), []byte("d")} {
		s.Put(b)
	}
	addrs := s.Addrs()
	if len(addrs) != 4 {
		t.Fatalf("len(Addrs) = %d, want 4", len(addrs))
	}
	if !sort.SliceIsSorted(addrs, func(i, j int) bool {
		return bytes.Compare(addrs[i][:], addrs[j][:]) < 0
	}) {
		t.Fatal("Addrs not lexicographically sorted")
	}
	again := s.Addrs()
	for i := range addrs {
		if addrs[i] != again[i] {
			t.Fatal("Addrs enumeration not stable")
		}
	}
}
