package castore

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// openCollect opens the log in dir and collects every replayed payload.
func openCollect(t *testing.T, dir string, opts SegLogOptions) (*SegLog, [][]byte, *Truncation) {
	t.Helper()
	var got [][]byte
	l, trunc, err := OpenSegLog(dir, opts, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return l, got, trunc
}

func TestSegLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, got, trunc := openCollect(t, dir, SegLogOptions{})
	if len(got) != 0 || trunc != nil {
		t.Fatalf("fresh log replayed %d entries, trunc %v", len(got), trunc)
	}
	var want [][]byte
	for i := 0; i < 100; i++ {
		p := []byte(fmt.Sprintf(`{"seq":%d,"detail":"entry %d"}`, i+1, i))
		want = append(want, p)
		if _, err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, got, trunc := openCollect(t, dir, SegLogOptions{})
	defer l2.Close()
	if trunc != nil {
		t.Fatalf("clean log truncated: %v", trunc)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if string(got[i]) != string(want[i]) {
			t.Fatalf("entry %d: %q, want %q", i, got[i], want[i])
		}
	}
	if st := l2.Stats(); st.Replayed != 100 {
		t.Fatalf("stats replayed %d, want 100", st.Replayed)
	}
}

func TestSegLogRotation(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openCollect(t, dir, SegLogOptions{MaxSegmentBytes: 128, SyncEvery: -1})
	for i := 0; i < 50; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("payload-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Stats(); st.Segments < 2 {
		t.Fatalf("expected rotation, got %d segments", st.Segments)
	}
	l.Close()

	l2, got, trunc := openCollect(t, dir, SegLogOptions{MaxSegmentBytes: 128})
	defer l2.Close()
	if trunc != nil {
		t.Fatalf("rotated log truncated: %v", trunc)
	}
	if len(got) != 50 {
		t.Fatalf("replayed %d entries across segments, want 50", len(got))
	}
	for i, p := range got {
		if want := fmt.Sprintf("payload-%03d", i); string(p) != want {
			t.Fatalf("entry %d = %q, want %q", i, p, want)
		}
	}
	// Appends continue in the highest segment after reopen.
	if _, err := l2.Append([]byte("after-reopen")); err != nil {
		t.Fatal(err)
	}
}

// lastSegment returns the path of the highest-indexed segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	idxs, err := segIndexes(dir)
	if err != nil || len(idxs) == 0 {
		t.Fatalf("no segments in %s: %v", dir, err)
	}
	return filepath.Join(dir, segName(idxs[len(idxs)-1]))
}

func TestSegLogTamperedTailTruncates(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openCollect(t, dir, SegLogOptions{})
	for i := 0; i < 10; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("entry-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Flip a payload bit inside the final entry.
	path := lastSegment(t, dir)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-2] ^= 0x40
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, got, trunc := openCollect(t, dir, SegLogOptions{})
	if trunc == nil {
		t.Fatal("tampered tail replayed without a truncation report")
	}
	if len(got) != 9 {
		t.Fatalf("replayed %d entries after tamper, want 9 (the verifiable prefix)", len(got))
	}
	if !strings.Contains(trunc.Reason, "corrupt") {
		t.Errorf("truncation reason %q does not name the corruption", trunc.Reason)
	}
	if trunc.DroppedBytes <= 0 {
		t.Errorf("truncation dropped %d bytes, want > 0", trunc.DroppedBytes)
	}
	// The log stays usable: append lands after the verified prefix and a
	// clean reopen sees 9 + 1 entries.
	if _, err := l2.Append([]byte("after-truncation")); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	l3, got, trunc := openCollect(t, dir, SegLogOptions{})
	defer l3.Close()
	if trunc != nil {
		t.Fatalf("log still truncating after heal: %v", trunc)
	}
	if len(got) != 10 || string(got[9]) != "after-truncation" {
		t.Fatalf("post-heal replay = %d entries (last %q), want 10 ending in the new append", len(got), got[len(got)-1])
	}
}

func TestSegLogTornTailTruncates(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openCollect(t, dir, SegLogOptions{})
	for i := 0; i < 5; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("entry-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	// Cut the file mid-entry, as a crash mid-write would.
	path := lastSegment(t, dir)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	l2, got, trunc := openCollect(t, dir, SegLogOptions{})
	defer l2.Close()
	if trunc == nil || len(got) != 4 {
		t.Fatalf("torn tail: %d entries, trunc %v; want 4 entries and a truncation", len(got), trunc)
	}
}

func TestSegLogRejectedEntryTruncates(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openCollect(t, dir, SegLogOptions{})
	for i := 0; i < 3; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("entry-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	// A consumer that cannot decode an otherwise well-hashed entry cuts
	// the log there, exactly like corruption.
	n := 0
	_, trunc, err := OpenSegLog(dir, SegLogOptions{}, func(p []byte) error {
		n++
		if n == 3 {
			return fmt.Errorf("undecodable")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if trunc == nil || !strings.Contains(trunc.Reason, "undecodable") {
		t.Fatalf("rejected entry produced truncation %v, want reason naming the rejection", trunc)
	}
}

func TestSegLogSegmentGapTruncates(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openCollect(t, dir, SegLogOptions{MaxSegmentBytes: 64, SyncEvery: -1})
	for i := 0; i < 30; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("payload-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	idxs, _ := segIndexes(dir)
	if len(idxs) < 3 {
		t.Fatalf("need >= 3 segments for a gap, have %d", len(idxs))
	}
	if err := os.Remove(filepath.Join(dir, segName(idxs[1]))); err != nil {
		t.Fatal(err)
	}
	l2, got, trunc := openCollect(t, dir, SegLogOptions{MaxSegmentBytes: 64})
	defer l2.Close()
	if trunc == nil || !strings.Contains(trunc.Reason, "segment gap") {
		t.Fatalf("gap replay returned truncation %v, want a segment-gap reason", trunc)
	}
	// Only the first segment's entries survive.
	for i, p := range got {
		if want := fmt.Sprintf("payload-%03d", i); string(p) != want {
			t.Fatalf("entry %d = %q, want %q", i, p, want)
		}
	}
}

func TestSegLogSyncCadence(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openCollect(t, dir, SegLogOptions{SyncEvery: 5})
	for i := 0; i < 12; i++ {
		if _, err := l.Append([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Stats(); st.Fsyncs != 2 {
		t.Fatalf("12 appends at SyncEvery=5 issued %d fsyncs, want 2", st.Fsyncs)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Fsyncs != 3 {
		t.Fatalf("manual Sync did not flush the remainder: %d fsyncs", st.Fsyncs)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Fsyncs != 3 {
		t.Fatalf("no-op Sync still fsynced: %d", st.Fsyncs)
	}
	l.Close()
}
