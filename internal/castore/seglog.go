package castore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// SegLog is an append-only, content-addressed segment log on disk: each
// entry is framed as [magic][length][sha256 addr][payload] and every
// replay re-hashes the payload against its address, so a torn tail, a
// flipped bit, or a record that no longer decodes is *detected* and cut
// off at the last verifiable entry instead of being restored blindly —
// the same verify-then-fallback discipline the checkpoint layer applies
// to recovery state. The detection service backs its report store with
// one of these (see internal/service.OpenStore); the log itself is
// payload-agnostic.
//
// Entries accumulate in numbered segment files (seg-000001.log, ...)
// that rotate at MaxSegmentBytes. Appends fsync on a configurable
// cadence (SyncEvery); Close and Sync flush unconditionally. The log is
// safe for concurrent use.
type SegLog struct {
	mu   sync.Mutex
	dir  string
	opts SegLogOptions

	f        *os.File // active segment, opened O_APPEND
	seg      int      // active segment index (1-based)
	segBytes int64    // bytes in the active segment

	segments  int
	diskBytes int64
	appended  int64
	replayed  int64
	fsyncs    int64
	unsynced  int
	closed    bool
}

// SegLogOptions tunes a segment log.
type SegLogOptions struct {
	// SyncEvery fsyncs the active segment after every Nth append; 0 → 1
	// (every append is durable before Append returns), negative → never
	// fsync automatically (Sync and Close still flush).
	SyncEvery int
	// MaxSegmentBytes rotates to a fresh segment file once the active one
	// reaches this size; 0 → 4 MiB.
	MaxSegmentBytes int64
}

func (o SegLogOptions) withDefaults() SegLogOptions {
	if o.SyncEvery == 0 {
		o.SyncEvery = 1
	}
	if o.MaxSegmentBytes <= 0 {
		o.MaxSegmentBytes = 4 << 20
	}
	return o
}

// Truncation describes a tail the log refused to replay: where the first
// unverifiable entry sat and why, plus how many bytes (including any
// later, now-unreachable segments) were discarded. The log is truncated
// at the last verified entry, so subsequent appends continue from there.
type Truncation struct {
	Segment      string `json:"segment"`
	Offset       int64  `json:"offset"`
	Reason       string `json:"reason"`
	DroppedBytes int64  `json:"dropped_bytes"`
}

func (t *Truncation) String() string {
	return fmt.Sprintf("%s@%d: %s (%d bytes discarded)", t.Segment, t.Offset, t.Reason, t.DroppedBytes)
}

// SegLogStats is a point-in-time accounting of the log.
type SegLogStats struct {
	Segments  int   // segment files on disk
	DiskBytes int64 // bytes across all segments
	Appended  int64 // entries appended this process
	Replayed  int64 // entries verified and replayed at open
	Fsyncs    int64 // explicit fsyncs issued
}

// Entry framing: 1 magic byte, 4-byte little-endian payload length, the
// 32-byte payload address, then the payload itself.
const (
	segMagic       = 0x52 // 'R'
	segHeaderSize  = 1 + 4 + 32
	maxEntryBytes  = 64 << 20
	segNameFormat  = "seg-%06d.log"
	segNamePattern = "seg-*.log"
)

func segName(idx int) string { return fmt.Sprintf(segNameFormat, idx) }

// OpenSegLog opens (creating if necessary) the segment log in dir and
// replays every verifiable entry, oldest first, through onEntry. An
// entry fails verification when its frame is torn, its payload no longer
// hashes to its address, or onEntry rejects it (an undecodable payload
// is as unusable as a corrupt one); the log is then truncated at the
// last good entry, later segments are discarded, and the cut is
// described by the returned *Truncation — replay never panics and never
// surfaces partial entries. The returned error is reserved for real I/O
// failures (unreadable directory, failed truncate).
func OpenSegLog(dir string, opts SegLogOptions, onEntry func(payload []byte) error) (*SegLog, *Truncation, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("castore: creating log dir: %w", err)
	}
	l := &SegLog{dir: dir, opts: opts}

	idxs, err := segIndexes(dir)
	if err != nil {
		return nil, nil, err
	}
	var trunc *Truncation
	last := 0
	for i, idx := range idxs {
		name := segName(idx)
		path := filepath.Join(dir, name)
		if i > 0 && idx != idxs[i-1]+1 {
			// A hole in the segment sequence makes everything after it
			// unreachable in log order.
			trunc = &Truncation{Segment: name, Reason: fmt.Sprintf("segment gap: %s follows %s", name, segName(idxs[i-1]))}
			if err := dropSegments(dir, idxs[i:], trunc); err != nil {
				return nil, nil, err
			}
			break
		}
		good, t, err := l.replaySegment(path, name, onEntry)
		if err != nil {
			return nil, nil, err
		}
		last = idx
		if t != nil {
			trunc = t
			if err := os.Truncate(path, good); err != nil {
				return nil, nil, fmt.Errorf("castore: truncating %s: %w", name, err)
			}
			if err := dropSegments(dir, idxs[i+1:], trunc); err != nil {
				return nil, nil, err
			}
			l.diskBytes += good
			l.segments++
			break
		}
		l.diskBytes += good
		l.segments++
	}
	if last == 0 {
		last = 1
	}
	if err := l.openSegment(last); err != nil {
		return nil, nil, err
	}
	return l, trunc, nil
}

// segIndexes lists the numeric indexes of the segment files in dir,
// ascending.
func segIndexes(dir string) ([]int, error) {
	names, err := filepath.Glob(filepath.Join(dir, segNamePattern))
	if err != nil {
		return nil, err
	}
	var idxs []int
	for _, p := range names {
		var i int
		if _, err := fmt.Sscanf(filepath.Base(p), segNameFormat, &i); err == nil && i > 0 {
			idxs = append(idxs, i)
		}
	}
	sort.Ints(idxs)
	return idxs, nil
}

// dropSegments removes unreachable segments, accounting their bytes to
// the truncation report.
func dropSegments(dir string, idxs []int, trunc *Truncation) error {
	for _, idx := range idxs {
		path := filepath.Join(dir, segName(idx))
		if fi, err := os.Stat(path); err == nil {
			trunc.DroppedBytes += fi.Size()
		}
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("castore: dropping unreachable segment: %w", err)
		}
	}
	return nil
}

// replaySegment verifies path entry by entry, calling onEntry for each.
// It returns the offset of the end of the last good entry and, when the
// segment does not verify to its end, a truncation report (with
// DroppedBytes covering this segment's bad tail).
func (l *SegLog) replaySegment(path, name string, onEntry func([]byte) error) (int64, *Truncation, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, nil, fmt.Errorf("castore: opening segment: %w", err)
	}
	defer f.Close()
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return 0, nil, err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, nil, err
	}

	cut := func(off int64, reason string) (int64, *Truncation, error) {
		return off, &Truncation{Segment: name, Offset: off, Reason: reason, DroppedBytes: size - off}, nil
	}
	var off int64
	hdr := make([]byte, segHeaderSize)
	var payload []byte
	for {
		if _, err := io.ReadFull(f, hdr); err != nil {
			if err == io.EOF {
				return off, nil, nil // clean end of segment
			}
			return cut(off, "torn entry header")
		}
		if hdr[0] != segMagic {
			return cut(off, "bad entry magic")
		}
		n := binary.LittleEndian.Uint32(hdr[1:5])
		if n > maxEntryBytes {
			return cut(off, fmt.Sprintf("implausible entry length %d", n))
		}
		var addr Addr
		copy(addr[:], hdr[5:])
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(f, payload); err != nil {
			return cut(off, "torn entry payload")
		}
		if Sum(payload) != addr {
			return cut(off, fmt.Sprintf("chunk %s: %v", addr, ErrCorrupt))
		}
		if err := onEntry(payload); err != nil {
			return cut(off, "entry rejected: "+err.Error())
		}
		off += segHeaderSize + int64(n)
		l.replayed++
	}
}

// openSegment opens segment idx for appending (creating it if absent)
// and syncs the directory so the dirent is durable.
func (l *SegLog) openSegment(idx int) error {
	path := filepath.Join(l.dir, segName(idx))
	_, statErr := os.Stat(path)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("castore: opening active segment: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	if os.IsNotExist(statErr) {
		l.segments++ // brand-new segment file
		if d, err := os.Open(l.dir); err == nil {
			d.Sync()
			d.Close()
		}
	}
	l.f, l.seg, l.segBytes = f, idx, fi.Size()
	return nil
}

// Append frames payload, writes it to the active segment (rotating
// first when full), and fsyncs per the configured cadence. It returns
// the payload's content address.
func (l *SegLog) Append(payload []byte) (Addr, error) {
	a := Sum(payload)
	if len(payload) > maxEntryBytes {
		return a, fmt.Errorf("castore: entry of %d bytes exceeds the %d-byte frame limit", len(payload), maxEntryBytes)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return a, errors.New("castore: segment log closed")
	}
	if l.segBytes >= l.opts.MaxSegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return a, err
		}
	}
	buf := make([]byte, segHeaderSize+len(payload))
	buf[0] = segMagic
	binary.LittleEndian.PutUint32(buf[1:5], uint32(len(payload)))
	copy(buf[5:5+32], a[:])
	copy(buf[segHeaderSize:], payload)
	if _, err := l.f.Write(buf); err != nil {
		return a, fmt.Errorf("castore: appending entry: %w", err)
	}
	l.segBytes += int64(len(buf))
	l.diskBytes += int64(len(buf))
	l.appended++
	l.unsynced++
	if l.opts.SyncEvery > 0 && l.unsynced >= l.opts.SyncEvery {
		if err := l.syncLocked(); err != nil {
			return a, err
		}
	}
	return a, nil
}

// rotateLocked seals the active segment and starts the next one.
func (l *SegLog) rotateLocked() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	return l.openSegment(l.seg + 1)
}

func (l *SegLog) syncLocked() error {
	if l.unsynced == 0 {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("castore: fsync: %w", err)
	}
	l.fsyncs++
	l.unsynced = 0
	return nil
}

// Sync flushes any unsynced appends to disk.
func (l *SegLog) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	return l.syncLocked()
}

// Close syncs and closes the log. Further appends fail; safe to call
// twice.
func (l *SegLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	err := l.syncLocked()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Stats returns a copy of the log's accounting.
func (l *SegLog) Stats() SegLogStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return SegLogStats{
		Segments:  l.segments,
		DiskBytes: l.diskBytes,
		Appended:  l.appended,
		Replayed:  l.replayed,
		Fsyncs:    l.fsyncs,
	}
}

// Dir returns the log's directory.
func (l *SegLog) Dir() string { return l.dir }
