// Package castore is a content-addressed chunk store: blocks are keyed by
// the SHA-256 of their contents, deduplicated on deposit, and reference
// counted so callers can retire whole groups of addresses (one checkpoint
// manifest's worth) without tracking sharing themselves.
//
// Because the address is the hash, every read is an integrity check for
// free: Get re-hashes the stored bytes and refuses to return a block whose
// contents no longer match its address. The checkpoint layer
// (internal/dsm) leans on this to detect tampered or lost recovery state
// instead of restoring it blindly; the Tamper and Delete fault hooks exist
// so tests can inject exactly those failures deterministically.
package castore

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Addr is a chunk address: the SHA-256 of the chunk's contents.
type Addr [sha256.Size]byte

// Sum returns the address of b without storing it.
func Sum(b []byte) Addr { return sha256.Sum256(b) }

// String renders the address as abbreviated hex for logs.
func (a Addr) String() string { return fmt.Sprintf("%x", a[:8]) }

// Errors returned by Get. Both mean the chunk's closure is unusable;
// callers distinguish them only for diagnostics.
var (
	// ErrMissing: no chunk is stored at the address.
	ErrMissing = errors.New("castore: chunk missing")
	// ErrCorrupt: the stored bytes no longer hash to the address.
	ErrCorrupt = errors.New("castore: chunk corrupt")
)

type chunk struct {
	data []byte
	refs int
}

// Stats is a point-in-time accounting of the store. The cumulative fields
// (Puts onward) are monotone over the store's lifetime; Chunks and
// LiveBytes describe what is resident right now.
type Stats struct {
	Chunks    int   // chunks currently resident
	LiveBytes int64 // bytes currently resident

	Puts         int64 // total Put calls
	Hits         int64 // Puts deduplicated against a resident chunk
	StoredBytes  int64 // bytes of chunks that were new at deposit time
	LogicalBytes int64 // bytes across all Puts, as if nothing deduped
	FreedBytes   int64 // bytes released by Unref reaching zero
	Heals        int64 // Puts that replaced tampered or deleted contents
	Tampers      int64 // Tamper fault injections applied
	Deletes      int64 // Delete fault injections applied
}

// Store is a refcounted content-addressed chunk store. Safe for concurrent
// use.
type Store struct {
	mu     sync.Mutex
	chunks map[Addr]*chunk
	stats  Stats
}

// New returns an empty store.
func New() *Store {
	return &Store{chunks: make(map[Addr]*chunk)}
}

// Put deposits b, returning its address and whether the chunk was new.
// The chunk's refcount rises by one either way; callers own exactly one
// reference per Put and retire it with Unref. A resident chunk whose bytes
// were tampered with (or deleted out from under its refcount) is healed:
// the incoming copy hashes to the address by construction, so it is
// authoritative.
func (s *Store) Put(b []byte) (Addr, bool) {
	a := Sum(b)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Puts++
	s.stats.LogicalBytes += int64(len(b))
	// Keep stored bytes non-nil: nil marks a Delete-faulted chunk.
	data := append(make([]byte, 0, len(b)), b...)
	c := s.chunks[a]
	if c == nil {
		c = &chunk{data: data}
		s.chunks[a] = c
		s.stats.StoredBytes += int64(len(b))
		s.stats.LiveBytes += int64(len(b))
	} else {
		s.stats.Hits++
		if c.data == nil || !bytes.Equal(c.data, b) {
			s.stats.LiveBytes += int64(len(b) - len(c.data))
			c.data = data
			s.stats.Heals++
		}
	}
	c.refs++
	return a, c.refs == 1
}

// Get returns a copy of the chunk at a, verifying its contents against the
// address. It returns ErrMissing if nothing is stored there and ErrCorrupt
// if the stored bytes no longer hash to a.
func (s *Store) Get(a Addr) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.chunks[a]
	if c == nil || c.data == nil {
		return nil, fmt.Errorf("%w: %s", ErrMissing, a)
	}
	if Sum(c.data) != a {
		return nil, fmt.Errorf("%w: %s", ErrCorrupt, a)
	}
	return append([]byte(nil), c.data...), nil
}

// Contains reports whether a chunk is resident at a (tampered or not).
func (s *Store) Contains(a Addr) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.chunks[a] != nil
}

// Unref drops one reference from the chunk at a, freeing it when the count
// reaches zero. Unref of an absent address is a no-op (the chunk may have
// been deleted by fault injection).
func (s *Store) Unref(a Addr) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.chunks[a]
	if c == nil {
		return
	}
	c.refs--
	if c.refs <= 0 {
		s.stats.FreedBytes += int64(len(c.data))
		s.stats.LiveBytes -= int64(len(c.data))
		delete(s.chunks, a)
	}
}

// Len returns the number of resident chunks.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.chunks)
}

// Stats returns a copy of the store's accounting.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Addrs returns every resident address in lexicographic order — the stable
// enumeration deterministic fault injection indexes into.
func (s *Store) Addrs() []Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Addr, 0, len(s.chunks))
	for a := range s.chunks {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return bytes.Compare(out[i][:], out[j][:]) < 0 })
	return out
}

// Tamper flips a bit in the stored copy of the chunk at a, so a later Get
// fails with ErrCorrupt. It reports whether a chunk was there to corrupt.
// Fault-injection hook; refcounts are untouched.
func (s *Store) Tamper(a Addr) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.chunks[a]
	if c == nil {
		return false
	}
	s.stats.Tampers++
	if len(c.data) == 0 {
		// An empty chunk has no bit to flip; growing it corrupts equally.
		c.data = []byte{0xff}
		s.stats.LiveBytes++
		return true
	}
	c.data[len(c.data)/2] ^= 0x80
	return true
}

// Delete drops the stored bytes of the chunk at a while keeping its
// refcount bookkeeping, so a later Get fails with ErrMissing and a later
// Put heals it. It reports whether a chunk was there to delete.
// Fault-injection hook.
func (s *Store) Delete(a Addr) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.chunks[a]
	if c == nil || c.data == nil {
		return false
	}
	s.stats.Deletes++
	s.stats.LiveBytes -= int64(len(c.data))
	c.data = nil
	return true
}
